"""Synthetic road network (the roadnet-usa stand-in).

roadnet-usa is a near-planar graph with low, near-uniform degrees and very
long paths (§VII-B, Fig. 8 shows it is the one dataset *without* a power-law
degree distribution).  The generator lays vertices on a grid and connects each
to its lattice neighbours, with a small perturbation probability that removes
edges (dead ends) and adds occasional diagonals (shortcuts), giving degree
2-4 almost everywhere.
"""

from __future__ import annotations

import random

from repro.errors import DatasetError
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import homogeneous_schema


def roadnet_graph(
    width: int = 40,
    height: int = 40,
    drop_probability: float = 0.05,
    diagonal_probability: float = 0.02,
    seed: int = 41,
    vertex_type: str = "Vertex",
    edge_label: str = "ROAD",
) -> PropertyGraph:
    """Generate a grid-based road network with bidirectional road segments.

    Args:
        width / height: Grid dimensions (``width * height`` intersections).
        drop_probability: Probability that a lattice segment is missing.
        diagonal_probability: Probability of an extra diagonal shortcut.
        seed: RNG seed.

    Raises:
        DatasetError: On non-positive dimensions.
    """
    if width < 2 or height < 2:
        raise DatasetError("width and height must be >= 2")
    rng = random.Random(seed)
    graph = PropertyGraph(name="roadnet-usa",
                          schema=homogeneous_schema(vertex_type, edge_label))

    def vertex_id(x: int, y: int) -> int:
        return y * width + x

    for y in range(height):
        for x in range(width):
            graph.add_vertex(vertex_id(x, y), vertex_type, x=x, y=y)

    def add_road(a: int, b: int) -> None:
        length = rng.uniform(0.1, 5.0)
        graph.add_edge(a, b, edge_label, km=round(length, 2))
        graph.add_edge(b, a, edge_label, km=round(length, 2))

    for y in range(height):
        for x in range(width):
            here = vertex_id(x, y)
            if x + 1 < width and rng.random() > drop_probability:
                add_road(here, vertex_id(x + 1, y))
            if y + 1 < height and rng.random() > drop_probability:
                add_road(here, vertex_id(x, y + 1))
            if (x + 1 < width and y + 1 < height
                    and rng.random() < diagonal_probability):
                add_road(here, vertex_id(x + 1, y + 1))
    return graph
