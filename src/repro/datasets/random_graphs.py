"""Random graph generators used by the estimator ablations.

Eq. 1 of the paper is the expected number of k-length simple paths in an
Erdős–Rényi random graph; this module generates such graphs (plus a simple
configuration-model power-law graph) so tests and benchmarks can compare the
estimators against ground truth on graphs whose generative model is known.
"""

from __future__ import annotations

import random

from repro.errors import DatasetError
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import homogeneous_schema


def erdos_renyi_graph(num_vertices: int, num_edges: int, seed: int = 17,
                      vertex_type: str = "Vertex", edge_label: str = "LINK"
                      ) -> PropertyGraph:
    """Directed G(n, m) graph: ``num_edges`` edges sampled uniformly without self-loops."""
    if num_vertices < 2 or num_edges < 0:
        raise DatasetError("need at least 2 vertices and a non-negative edge count")
    max_edges = num_vertices * (num_vertices - 1)
    if num_edges > max_edges:
        raise DatasetError(f"num_edges {num_edges} exceeds maximum {max_edges}")
    rng = random.Random(seed)
    graph = PropertyGraph(name="erdos-renyi",
                          schema=homogeneous_schema(vertex_type, edge_label))
    for index in range(num_vertices):
        graph.add_vertex(index, vertex_type)
    seen: set[tuple[int, int]] = set()
    while len(seen) < num_edges:
        source = rng.randrange(num_vertices)
        target = rng.randrange(num_vertices)
        if source == target or (source, target) in seen:
            continue
        seen.add((source, target))
        graph.add_edge(source, target, edge_label)
    return graph


def power_law_graph(num_vertices: int, exponent: float = 2.2, max_degree: int | None = None,
                    seed: int = 19, vertex_type: str = "Vertex",
                    edge_label: str = "LINK") -> PropertyGraph:
    """Configuration-model-style directed graph with power-law out-degrees."""
    if num_vertices < 2:
        raise DatasetError("need at least 2 vertices")
    rng = random.Random(seed)
    cap = max_degree or max(2, num_vertices // 10)
    graph = PropertyGraph(name="power-law",
                          schema=homogeneous_schema(vertex_type, edge_label))
    for index in range(num_vertices):
        graph.add_vertex(index, vertex_type)
    weights = [1.0 / (rank ** exponent) for rank in range(1, cap + 1)]
    total = sum(weights)
    for source in range(num_vertices):
        pick = rng.random() * total
        cumulative = 0.0
        degree = cap
        for rank, weight in enumerate(weights, start=1):
            cumulative += weight
            if pick <= cumulative:
                degree = rank
                break
        targets: set[int] = set()
        while len(targets) < min(degree, num_vertices - 1):
            target = rng.randrange(num_vertices)
            if target != source:
                targets.add(target)
        for target in targets:
            graph.add_edge(source, target, edge_label)
    return graph
