"""Dataset registry: named, size-parameterized stand-ins for Table III.

The benchmarks refer to datasets by the paper's short names (``prov``,
``dblp``, ``soc-livejournal``, ``roadnet-usa``); this registry maps those
names to generator calls at three scale presets (``tiny`` for unit tests,
``small`` for the default benchmark runs, ``medium`` for longer runs), all
deterministic given the seed baked into each preset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import DatasetError
from repro.graph.property_graph import PropertyGraph
from repro.datasets.dblp import dblp_graph, summarized_dblp_graph
from repro.datasets.provenance import provenance_graph, summarized_provenance_graph
from repro.datasets.roadnet import roadnet_graph
from repro.datasets.social import social_graph

#: Dataset short names used throughout the benchmarks (Table III).
DATASET_NAMES = ("prov", "prov-summarized", "dblp", "dblp-summarized",
                 "soc-livejournal", "roadnet-usa")

#: Scale presets.
SCALES = ("tiny", "small", "medium")


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset at a specific scale."""

    name: str
    scale: str
    builder: Callable[[], PropertyGraph]
    heterogeneous: bool
    connector_vertex_type: str
    description: str

    def build(self) -> PropertyGraph:
        """Generate the graph (deterministic for a given name and scale)."""
        return self.builder()


def _presets() -> dict[tuple[str, str], DatasetSpec]:
    prov_sizes = {"tiny": 40, "small": 150, "medium": 600}
    dblp_sizes = {"tiny": (40, 60), "small": (200, 300), "medium": (800, 1200)}
    soc_sizes = {"tiny": 150, "small": 800, "medium": 3000}
    road_sizes = {"tiny": 10, "small": 25, "medium": 60}

    specs: dict[tuple[str, str], DatasetSpec] = {}
    for scale in SCALES:
        specs[("prov", scale)] = DatasetSpec(
            name="prov", scale=scale,
            builder=lambda s=scale: provenance_graph(
                num_jobs=prov_sizes[s], include_tasks=True, seed=7),
            heterogeneous=True, connector_vertex_type="Job",
            description="Data lineage graph (jobs, files, tasks, machines, users)")
        specs[("prov-summarized", scale)] = DatasetSpec(
            name="prov-summarized", scale=scale,
            builder=lambda s=scale: summarized_provenance_graph(
                num_jobs=prov_sizes[s], seed=7),
            heterogeneous=True, connector_vertex_type="Job",
            description="Provenance graph summarized to jobs and files")
        specs[("dblp", scale)] = DatasetSpec(
            name="dblp", scale=scale,
            builder=lambda s=scale: dblp_graph(
                num_authors=dblp_sizes[s][0], num_publications=dblp_sizes[s][1], seed=13),
            heterogeneous=True, connector_vertex_type="Author",
            description="Publication graph (authors, articles, in-proc, venues)")
        specs[("dblp-summarized", scale)] = DatasetSpec(
            name="dblp-summarized", scale=scale,
            builder=lambda s=scale: summarized_dblp_graph(
                num_authors=dblp_sizes[s][0], num_publications=dblp_sizes[s][1], seed=13),
            heterogeneous=True, connector_vertex_type="Author",
            description="Publication graph summarized to authors and publications")
        specs[("soc-livejournal", scale)] = DatasetSpec(
            name="soc-livejournal", scale=scale,
            builder=lambda s=scale: social_graph(num_vertices=soc_sizes[s], seed=29),
            heterogeneous=False, connector_vertex_type="Vertex",
            description="Power-law social network (directed preferential attachment)")
        specs[("roadnet-usa", scale)] = DatasetSpec(
            name="roadnet-usa", scale=scale,
            builder=lambda s=scale: roadnet_graph(
                width=road_sizes[s], height=road_sizes[s], seed=41),
            heterogeneous=False, connector_vertex_type="Vertex",
            description="Near-planar road network (grid with perturbations)")
    return specs


_PRESETS = _presets()


def dataset(name: str, scale: str = "small") -> DatasetSpec:
    """Look up a dataset spec by name and scale.

    Raises:
        DatasetError: If the name or scale is unknown.
    """
    if scale not in SCALES:
        raise DatasetError(f"unknown scale {scale!r}; expected one of {SCALES}")
    spec = _PRESETS.get((name, scale))
    if spec is None:
        raise DatasetError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    return spec


def load_dataset(name: str, scale: str = "small") -> PropertyGraph:
    """Generate the named dataset at the given scale."""
    return dataset(name, scale).build()


def evaluation_datasets(scale: str = "small") -> list[DatasetSpec]:
    """The four datasets of Table III (prov, dblp, soc-livejournal, roadnet-usa)."""
    return [dataset(name, scale)
            for name in ("prov", "dblp", "soc-livejournal", "roadnet-usa")]
