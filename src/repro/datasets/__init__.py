"""Synthetic stand-ins for the paper's evaluation datasets (Table III).

The proprietary Microsoft provenance graph and the public GraphDBLP /
soc-LiveJournal1 / roadnet-usa datasets are replaced by deterministic
generators that preserve the schema and degree-distribution shape each
experiment depends on (see DESIGN.md for the substitution rationale).
"""

from repro.datasets.provenance import provenance_graph, summarized_provenance_graph
from repro.datasets.dblp import dblp_graph, summarized_dblp_graph
from repro.datasets.social import social_graph
from repro.datasets.roadnet import roadnet_graph
from repro.datasets.random_graphs import erdos_renyi_graph, power_law_graph
from repro.datasets.registry import (
    DATASET_NAMES,
    SCALES,
    DatasetSpec,
    dataset,
    evaluation_datasets,
    load_dataset,
)

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "SCALES",
    "dataset",
    "dblp_graph",
    "erdos_renyi_graph",
    "evaluation_datasets",
    "load_dataset",
    "power_law_graph",
    "provenance_graph",
    "roadnet_graph",
    "social_graph",
    "summarized_dblp_graph",
    "summarized_provenance_graph",
]
