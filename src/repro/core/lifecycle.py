"""Workload-adaptive view lifecycle engine (the online §V-B loop).

The paper's workload analyzer (Fig. 2) is described as a one-shot offline
step: enumerate candidates for a fixed workload, solve the knapsack, hand the
chosen views to the graph engine.  A serving system never sees a fixed
workload — the query mix drifts, views decay from "hot" to "dead weight", and
the cost model's α-percentile estimates are systematically off for any one
graph.  This module closes the loop:

    execute ──▶ WorkloadLog (signature, frequency, planned vs observed work)
        │                                │
        │                                ▼  every ``adapt_every`` queries
        │                       ViewLifecycleEngine.adapt()
        │                                │ re-enumerate + frequency-weighted
        │                                │ knapsack under the space budget
        │                                ▼
        │                 diff desired catalog vs current catalog
        │                    │                         │
        │              materialize new winners    evict decayed views
        │                    │   (actual sizes feed   (catalog + persistent
        │                    ▼    the calibrator)      store + CSR snapshots)
        └──────────── CostCalibration ◀──────────────────┘
              observed/estimated ratios, applied per template to
              ``ViewCostModel`` (query costs) and ``ViewSizeEstimator``
              (view sizes) so the *next* selection is better informed

Everything the engine learns — the workload log and the calibration state —
round-trips through :class:`~repro.storage.persistent.PersistentViewStore`
(:meth:`ViewLifecycleEngine.state_dict` / :meth:`ViewLifecycleEngine.load_state`),
so an engine restarted on the same graph re-selects exactly what it would
have selected before the restart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.selection import SelectionResult
from repro.query.ast import GraphQuery
from repro.query.parser import parse_query
from repro.views.definitions import ConnectorView, SummarizerView, ViewDefinition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kaskade -> lifecycle)
    from repro.core.kaskade import Kaskade, QueryOutcome
    from repro.views.catalog import MaterializedView

#: Reasons an adaptation cycle may evict a view.
EVICTION_REASONS = ("unselected", "budget")


# --------------------------------------------------------------------- log
@dataclass
class WorkloadEntry:
    """One distinct query template observed by the workload log.

    ``count`` is a *decayed* frequency: every adaptation cycle multiplies it
    by the log's decay factor, so templates that stopped arriving fade out of
    selection instead of pinning their views forever.
    """

    signature: str
    query: GraphQuery
    name: str = ""
    count: float = 0.0
    last_seen: int = 0
    #: Selection-time (uncalibrated) cost estimate of the query template.
    estimated_cost: float = 0.0
    #: EWMA of the observed execution work (``ExecutionStats.total_work``).
    observed_work: float = 0.0
    samples: int = 0

    def observe(self, observed_work: float, tick: int, smoothing: float) -> None:
        self.count += 1.0
        self.last_seen = tick
        if self.samples == 0:
            self.observed_work = float(observed_work)
        else:
            self.observed_work += smoothing * (observed_work - self.observed_work)
        self.samples += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "signature": self.signature,
            "text": str(self.query),
            "name": self.name,
            "count": self.count,
            "last_seen": self.last_seen,
            "estimated_cost": self.estimated_cost,
            "observed_work": self.observed_work,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadEntry":
        query = parse_query(payload["text"], name=payload.get("name", ""))
        return cls(
            signature=payload["signature"],
            query=query,
            name=payload.get("name", ""),
            count=float(payload.get("count", 0.0)),
            last_seen=int(payload.get("last_seen", 0)),
            estimated_cost=float(payload.get("estimated_cost", 0.0)),
            observed_work=float(payload.get("observed_work", 0.0)),
            samples=int(payload.get("samples", 0)),
        )


class WorkloadLog:
    """Bounded, decayed record of the queries the engine has served.

    Entries are keyed by the query's *structural signature* (name-independent
    MATCH/WHERE/RETURN identity), so two differently-named submissions of the
    same template accumulate into one frequency — the unit both selection
    weighting and calibration operate on.
    """

    def __init__(self, decay: float = 0.5, max_entries: int = 256,
                 min_count: float = 0.05, smoothing: float = 0.5) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self.max_entries = max_entries
        self.min_count = min_count
        self.smoothing = smoothing
        self.ticks = 0
        self._entries: dict[str, WorkloadEntry] = {}

    def record(self, query: GraphQuery, observed_work: float,
               estimated_cost: float | None = None) -> WorkloadEntry:
        """Fold one execution into the log and return the template's entry."""
        self.ticks += 1
        signature = query.structural_signature()
        entry = self._entries.get(signature)
        if entry is None:
            if len(self._entries) >= self.max_entries:
                coldest = min(self._entries.values(), key=lambda e: (e.count, e.last_seen))
                del self._entries[coldest.signature]
            entry = WorkloadEntry(signature=signature, query=query,
                                  name=query.name or "")
            self._entries[signature] = entry
        if query.name and not entry.name:
            entry.name = query.name
        if estimated_cost is not None:
            entry.estimated_cost = float(estimated_cost)
        entry.observe(observed_work, self.ticks, self.smoothing)
        return entry

    def decay_all(self) -> None:
        """Age every template; templates decayed below ``min_count`` drop out."""
        stale = []
        for signature, entry in self._entries.items():
            entry.count *= self.decay
            if entry.count < self.min_count:
                stale.append(signature)
        for signature in stale:
            del self._entries[signature]

    # ------------------------------------------------------------- selection
    def workload(self) -> list[GraphQuery]:
        """The distinct query templates, hottest first (selection input)."""
        entries = sorted(self._entries.values(), key=lambda e: (-e.count, e.signature))
        return [entry.query for entry in entries]

    def weights(self) -> dict[str, float]:
        """Decayed frequency per structural signature (selection weighting)."""
        return {sig: entry.count for sig, entry in self._entries.items()}

    def entry(self, signature: str) -> WorkloadEntry | None:
        return self._entries.get(signature)

    def entries(self) -> list[WorkloadEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    # ----------------------------------------------------------- durability
    def to_dict(self) -> dict[str, Any]:
        return {
            "decay": self.decay,
            "max_entries": self.max_entries,
            "min_count": self.min_count,
            "smoothing": self.smoothing,
            "ticks": self.ticks,
            "entries": [entry.to_dict() for entry in self._entries.values()],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadLog":
        log = cls(
            decay=float(payload.get("decay", 0.5)),
            max_entries=int(payload.get("max_entries", 256)),
            min_count=float(payload.get("min_count", 0.05)),
            smoothing=float(payload.get("smoothing", 0.5)),
        )
        log.ticks = int(payload.get("ticks", 0))
        for record in payload.get("entries", []):
            entry = WorkloadEntry.from_dict(record)
            log._entries[entry.signature] = entry
        return log


# -------------------------------------------------------------- calibration
@dataclass
class _Ratio:
    """EWMA of an observed/estimated ratio."""

    value: float = 1.0
    samples: int = 0

    def observe(self, ratio: float, smoothing: float) -> None:
        if self.samples == 0:
            self.value = ratio
        else:
            self.value += smoothing * (ratio - self.value)
        self.samples += 1


class CostCalibration:
    """Observed/estimated correction factors for the advisor's cost model.

    Two families of ratios are learned, both per *template* so one
    observation generalizes to every sibling view or query of the same shape:

    * **query cost** — keyed by structural query signature: how much actual
      traversal work (``ExecutionStats.total_work``) one unit of the
      selection-time cost estimate turned out to be worth;
    * **view size** — keyed by the view's template (kind, connector kind,
      source type / summarizer kind): actual materialized edges over the
      α-percentile estimate.  The α = 95 upper bound is the right *budgeting*
      posture before any observation, but once a sibling view has been
      materialized the measured ratio is strictly better information — it is
      what lets a previously "too big on paper" view fit the budget.

    Factors are clamped to ``[min_factor, max_factor]`` so one outlier
    observation cannot poison future selections.
    """

    def __init__(self, smoothing: float = 0.5, min_factor: float = 0.01,
                 max_factor: float = 100.0) -> None:
        self.smoothing = smoothing
        self.min_factor = min_factor
        self.max_factor = max_factor
        self._query: dict[str, _Ratio] = {}
        self._size: dict[str, _Ratio] = {}

    # ------------------------------------------------------------- observing
    def observe_query(self, query: GraphQuery, estimated_cost: float,
                      observed_work: float) -> None:
        """Record how a query's selection-time estimate compared to reality."""
        if estimated_cost <= 0:
            return
        ratio = self._clamp(observed_work / estimated_cost)
        self._query.setdefault(query.structural_signature(), _Ratio()).observe(
            ratio, self.smoothing)

    def observe_view_size(self, definition: ViewDefinition, estimated_edges: float,
                          actual_edges: float) -> None:
        """Record a materialized view's actual size against its estimate."""
        if estimated_edges <= 0:
            return
        ratio = self._clamp(actual_edges / estimated_edges)
        self._size.setdefault(self.template_key(definition), _Ratio()).observe(
            ratio, self.smoothing)

    # -------------------------------------------------------------- applying
    def query_factor(self, query: GraphQuery) -> float:
        """Multiplier for the selection-time cost estimate of ``query``."""
        ratio = self._query.get(query.structural_signature())
        return ratio.value if ratio is not None else 1.0

    def size_factor(self, definition: ViewDefinition) -> float:
        """Multiplier for the size estimate of any view of this template."""
        ratio = self._size.get(self.template_key(definition))
        return ratio.value if ratio is not None else 1.0

    @staticmethod
    def template_key(definition: ViewDefinition) -> str:
        """The template a view generalizes observations across."""
        if isinstance(definition, ConnectorView):
            return "|".join(("connector", definition.connector_kind,
                             definition.source_type or "*",
                             definition.target_type or definition.source_type or "*"))
        if isinstance(definition, SummarizerView):
            return "|".join(("summarizer", definition.summarizer_kind))
        return "|".join(("view", type(definition).__name__))

    def _clamp(self, ratio: float) -> float:
        return min(max(ratio, self.min_factor), self.max_factor)

    # ----------------------------------------------------------- durability
    def to_dict(self) -> dict[str, Any]:
        return {
            "smoothing": self.smoothing,
            "min_factor": self.min_factor,
            "max_factor": self.max_factor,
            "query": {key: {"value": r.value, "samples": r.samples}
                      for key, r in self._query.items()},
            "size": {key: {"value": r.value, "samples": r.samples}
                     for key, r in self._size.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CostCalibration":
        calibration = cls(
            smoothing=float(payload.get("smoothing", 0.5)),
            min_factor=float(payload.get("min_factor", 0.01)),
            max_factor=float(payload.get("max_factor", 100.0)),
        )
        for attr, bucket in (("_query", "query"), ("_size", "size")):
            store: dict[str, _Ratio] = getattr(calibration, attr)
            for key, record in payload.get(bucket, {}).items():
                store[key] = _Ratio(value=float(record["value"]),
                                    samples=int(record.get("samples", 1)))
        return calibration


# ------------------------------------------------------------------- engine
@dataclass(frozen=True)
class LifecycleConfig:
    """Tunable knobs of the adaptive lifecycle loop.

    Attributes:
        budget_edges: Space budget (estimated edges) the knapsack selects
            under — the same unit :meth:`Kaskade.select_views` uses.
        adapt_every: Queries observed between automatic adaptation cycles.
        decay: Per-cycle multiplier on every template's frequency.
        max_log_entries: Bound on distinct templates the log retains.
        min_count: Templates decayed below this frequency leave the log.
        smoothing: EWMA smoothing for observed work and calibration ratios.
        enforce_actual_budget: After materialization, evict lowest
            benefit-per-edge views while the catalog's *actual* edge total
            exceeds the budget (the estimate-based knapsack cannot see actual
            sizes, the calibrated estimator only converges toward them).
    """

    budget_edges: float
    adapt_every: int = 32
    decay: float = 0.5
    max_log_entries: int = 256
    min_count: float = 0.05
    smoothing: float = 0.5
    enforce_actual_budget: bool = True


@dataclass(frozen=True)
class EvictionRecord:
    """One view dropped by an adaptation cycle."""

    name: str
    reason: str
    actual_edges: int = 0

    def __post_init__(self) -> None:
        if self.reason not in EVICTION_REASONS:
            raise ValueError(
                f"unknown eviction reason {self.reason!r}; expected one of "
                f"{EVICTION_REASONS}")


@dataclass
class AdaptationReport:
    """What one :meth:`ViewLifecycleEngine.adapt` cycle decided."""

    cycle: int
    queries_observed: int
    selection: SelectionResult | None = None
    materialized: list[str] = field(default_factory=list)
    evicted: list[EvictionRecord] = field(default_factory=list)
    kept: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def changed(self) -> bool:
        return bool(self.materialized or self.evicted)

    @property
    def evicted_names(self) -> list[str]:
        return [record.name for record in self.evicted]


class ViewLifecycleEngine:
    """Online mining → selection → materialization → eviction, with feedback.

    Created through :meth:`Kaskade.enable_adaptive`; every
    :meth:`Kaskade.execute` then feeds the engine one
    :class:`~repro.query.stats.WorkFeedback` sample, and after every
    ``config.adapt_every`` samples the engine re-runs frequency-weighted view
    selection over the logged templates, materializes newly winning views and
    evicts the rest (catalog + persistent store + CSR snapshots, via
    :meth:`Kaskade.evict_view`).
    """

    STATE_KEY = "lifecycle"

    def __init__(self, kaskade: "Kaskade", config: LifecycleConfig) -> None:
        if config.adapt_every < 1:
            raise ValueError(f"adapt_every must be >= 1, got {config.adapt_every}")
        if config.budget_edges < 0:
            raise ValueError(f"budget_edges must be >= 0, got {config.budget_edges}")
        self.kaskade = kaskade
        self.config = config
        self.log = WorkloadLog(decay=config.decay, max_entries=config.max_log_entries,
                               min_count=config.min_count, smoothing=config.smoothing)
        self.calibration = CostCalibration(smoothing=config.smoothing)
        self.cycle = 0
        self.queries_since_adapt = 0
        self.reports: list[AdaptationReport] = []
        # Let the advisor learn from views that are already materialized.
        for view in kaskade.catalog:
            self._observe_view_size(view)

    # ------------------------------------------------------------- observing
    def observe(self, query: GraphQuery,
                outcome: "QueryOutcome") -> AdaptationReport | None:
        """Fold one executed query into the log; adapt when the cadence says so.

        Returns the adaptation report when this observation triggered a
        cycle, None otherwise.
        """
        feedback = outcome.feedback()
        estimated = self.kaskade.cost_model.query_cost_model.estimate_total(query)
        self.log.record(query, feedback.observed_work, estimated_cost=estimated)
        # Calibrate on base-graph executions only: a view-served query's work
        # says how good the *view* is, not how expensive the template is on
        # the base graph — folding it in would spiral the template's cost
        # estimate down and un-select the very view that produced it.
        if feedback.used_view is None:
            self.calibration.observe_query(query, estimated, feedback.observed_work)
        self.queries_since_adapt += 1
        if self.queries_since_adapt >= self.config.adapt_every:
            return self.adapt()
        return None

    # -------------------------------------------------------------- adapting
    def adapt(self) -> AdaptationReport:
        """Run one full lifecycle cycle against the current workload log."""
        start = time.perf_counter()
        self.cycle += 1
        report = AdaptationReport(cycle=self.cycle,
                                  queries_observed=self.queries_since_adapt)
        self.queries_since_adapt = 0
        workload = self.log.workload()
        if workload:
            selection = self.kaskade.selector.select(
                workload, self.config.budget_edges, self.log.weights())
            report.selection = selection
            desired = {a.candidate.definition.signature(): a for a in selection.selected}
        else:
            desired = {}

        # Evict first (frees budget before new materializations), then add.
        for view in list(self.kaskade.catalog):
            signature = view.definition.signature()
            if signature in desired:
                report.kept.append(view.definition.name)
                continue
            self.kaskade.evict_view(view.definition)
            report.evicted.append(EvictionRecord(name=view.definition.name,
                                                 reason="unselected",
                                                 actual_edges=view.num_edges))
        for signature, assessment in desired.items():
            if self.kaskade.catalog.contains(assessment.candidate.definition):
                continue
            view = self.kaskade.materialize_view(assessment.candidate)
            self._observe_view_size(view)
            report.materialized.append(view.definition.name)
        if self.config.enforce_actual_budget and desired:
            self._enforce_actual_budget(report, desired)

        for query in workload:
            self.kaskade._save_rewrites(
                query, report.selection.rewrites_for(query)
                if report.selection is not None else [])
        self.log.decay_all()
        report.elapsed_seconds = time.perf_counter() - start
        self.reports.append(report)
        return report

    def _enforce_actual_budget(self, report: AdaptationReport, desired) -> None:
        """Benefit-per-edge eviction while actual catalog size exceeds budget."""
        budget = self.config.budget_edges

        def benefit_per_edge(view: "MaterializedView") -> float:
            assessment = desired.get(view.definition.signature())
            benefit = assessment.total_improvement if assessment is not None else 0.0
            return benefit / max(view.num_edges, 1)

        while self.kaskade.catalog.total_size() > budget and len(self.kaskade.catalog):
            victim = min(self.kaskade.catalog, key=benefit_per_edge)
            self.kaskade.evict_view(victim.definition)
            report.kept = [name for name in report.kept if name != victim.definition.name]
            report.materialized = [name for name in report.materialized
                                   if name != victim.definition.name]
            report.evicted.append(EvictionRecord(name=victim.definition.name,
                                                 reason="budget",
                                                 actual_edges=victim.num_edges))

    def _observe_view_size(self, view: "MaterializedView") -> None:
        # Ratios are observed against the *raw* (uncalibrated) estimate:
        # observing against the calibrated one would feed the factor back
        # into its own denominator (fixed point sqrt(actual/raw), not
        # actual/raw) and degrade a correct first observation.
        raw = self.kaskade.cost_model.estimator.raw_estimate(view.definition).edges
        self.calibration.observe_view_size(view.definition, raw,
                                           view.graph.num_edges)

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict[str, Any]:
        """Serializable advisor state: workload log + calibration + cadence."""
        return {
            "version": 1,
            "cycle": self.cycle,
            "queries_since_adapt": self.queries_since_adapt,
            "log": self.log.to_dict(),
            "calibration": self.calibration.to_dict(),
        }

    def load_state(self, payload: Mapping[str, Any]) -> None:
        """Restore advisor state previously produced by :meth:`state_dict`."""
        self.cycle = int(payload.get("cycle", 0))
        self.queries_since_adapt = int(payload.get("queries_since_adapt", 0))
        self.log = WorkloadLog.from_dict(payload.get("log", {}))
        restored = CostCalibration.from_dict(payload.get("calibration", {}))
        # Swap contents, not the object: Kaskade's cost model and estimators
        # hold a reference to the calibration created at enable time.
        self.calibration._query = restored._query
        self.calibration._size = restored._size
        self.calibration.smoothing = restored.smoothing
        self.calibration.min_factor = restored.min_factor
        self.calibration.max_factor = restored.max_factor

    def checkpoint(self, store) -> None:
        """Persist the advisor state into a :class:`PersistentViewStore`."""
        store.save_state(self.STATE_KEY, self.state_dict())

    def restore(self, store) -> bool:
        """Reload advisor state from ``store``; returns whether any was found."""
        payload = store.load_state(self.STATE_KEY)
        if payload is None:
            return False
        self.load_state(payload)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ViewLifecycleEngine(cycle={self.cycle}, templates={len(self.log)}, "
            f"since_adapt={self.queries_since_adapt}/{self.config.adapt_every})"
        )
