"""KASKADE core: constraint-based enumeration, cost model, selection, rewriting.

This subpackage implements the paper's primary contribution: explicit
constraint extraction (§IV-A1), implicit constraint mining (§IV-A2),
inference-based view enumeration via templates (§IV-B), the view size
estimators and cost model (§V-A), knapsack view selection (§V-B), view-based
query rewriting (§V-C), and the :class:`Kaskade` facade tying it all together.
"""

from repro.core.facts import describe_facts, query_to_facts, schema_to_facts
from repro.core.mining import (
    k_hop_schema_paths_procedural,
    mining_rules,
    query_mining_rules,
    schema_mining_rules,
)
from repro.core.templates import (
    AggregateTemplate,
    ViewCandidate,
    ViewTemplate,
    all_template_rules,
    connector_templates,
    summarizer_templates,
)
from repro.core.enumerator import (
    EnumerationResult,
    SearchSpaceReport,
    ViewEnumerator,
)
from repro.core.estimator import (
    DEFAULT_ALPHA,
    SizeEstimate,
    ViewSizeEstimator,
    erdos_renyi_estimate,
    heterogeneous_estimate,
    homogeneous_estimate,
)
from repro.core.cost_model import CandidateAssessment, ViewBenefit, ViewCostModel
from repro.core.lifecycle import (
    AdaptationReport,
    CostCalibration,
    EvictionRecord,
    LifecycleConfig,
    ViewLifecycleEngine,
    WorkloadEntry,
    WorkloadLog,
)
from repro.core.rewriter import QueryRewriter, RewrittenQuery
from repro.core.selection import SelectionResult, ViewSelector
from repro.core.kaskade import Kaskade, MaterializationReport, QueryOutcome

__all__ = [
    "AdaptationReport",
    "AggregateTemplate",
    "CandidateAssessment",
    "CostCalibration",
    "DEFAULT_ALPHA",
    "EnumerationResult",
    "EvictionRecord",
    "Kaskade",
    "LifecycleConfig",
    "ViewLifecycleEngine",
    "WorkloadEntry",
    "WorkloadLog",
    "MaterializationReport",
    "QueryOutcome",
    "QueryRewriter",
    "RewrittenQuery",
    "SearchSpaceReport",
    "SelectionResult",
    "SizeEstimate",
    "ViewBenefit",
    "ViewCandidate",
    "ViewCostModel",
    "ViewEnumerator",
    "ViewSelector",
    "ViewSizeEstimator",
    "ViewTemplate",
    "all_template_rules",
    "connector_templates",
    "describe_facts",
    "erdos_renyi_estimate",
    "heterogeneous_estimate",
    "homogeneous_estimate",
    "k_hop_schema_paths_procedural",
    "mining_rules",
    "query_mining_rules",
    "query_to_facts",
    "schema_mining_rules",
    "schema_to_facts",
    "summarizer_templates",
]
