"""The KASKADE facade: workload analyzer + query rewriter + execution engine.

This module ties every component of Fig. 2 together around one base graph:

* the **workload analyzer** (:meth:`Kaskade.select_views`) runs constraint-
  based view enumeration for a workload, assesses candidates with the cost
  model, solves the knapsack, and materializes the chosen views into the view
  catalog;
* the **query rewriter** (:meth:`Kaskade.rewrite`) finds, among the
  *materialized* views, the rewrite with the smallest estimated evaluation
  cost for an incoming query;
* the **execution engine** (:meth:`Kaskade.execute`) plans the original query
  against the base graph and every applicable rewrite against its view,
  compares the *planned* costs (cached per query signature + graph version),
  and runs the cheaper plan through the batched operator pipeline
  (:mod:`repro.query.plan`) — automatically choosing the right target graph
  (the connector view's graph, a summarized graph, the base∪connector union,
  or the raw graph).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.cost_model import ViewCostModel
from repro.errors import QueryExecutionError, ViewError
from repro.core.enumerator import EnumerationResult, ViewEnumerator
from repro.core.estimator import DEFAULT_ALPHA
from repro.core.lifecycle import AdaptationReport, LifecycleConfig, ViewLifecycleEngine
from repro.core.rewriter import QueryRewriter, RewrittenQuery
from repro.core.selection import SelectionResult, ViewSelector
from repro.core.templates import ViewCandidate
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import GraphSchema
from repro.graph.statistics import compute_statistics
from repro.query.ast import GraphQuery
from repro.query.cost import QueryCostModel
from repro.query.executor import ENGINES, ExecutionResult, QueryExecutor
from repro.query.stats import WorkFeedback
from repro.query.plan import LogicalPlan, PhysicalExecutor, QueryPlanner
from repro.query.parser import parse_query
from repro.storage.base import GraphLike
from repro.storage.manager import StorageManager
from repro.storage.persistent import PersistentViewStore
from repro.views.catalog import MaterializedView, ViewCatalog
from repro.views.definitions import ConnectorView, SummarizerView
from repro.views.delta import MaintenanceManager, RefreshReport

#: Saved per-query rewrites retained at once (oldest evicted first).
_MAX_SAVED_REWRITES = 512

#: Cached logical plans retained at once (keyed like saved rewrites, plus the
#: target graph's identity and version; oldest evicted first).
_MAX_SAVED_PLANS = 1024

#: Cached per-(graph, version) cost models / planners retained at once.  Under
#: mutating traffic every refresh mints a new version key, so these must be
#: bounded like the plan cache (oldest evicted first).
_MAX_CACHED_MODELS = 64


@dataclass
class MaterializationReport:
    """What `select_views` chose and materialized."""

    selection: SelectionResult
    materialized: list[MaterializedView] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def view_names(self) -> list[str]:
        return [view.definition.name for view in self.materialized]


@dataclass
class QueryOutcome:
    """Result of executing a query through KASKADE.

    Besides the rows and work counters, the outcome records the *decision*
    the optimizer made: the planned cost of running the query on the base
    graph (``base_cost``), the planned cost of the best view rewrite
    (``rewrite_cost``, None when no rewrite applied), and the logical plan
    that was actually executed (``plan``, None under the interpreter
    engine).  ``explain()`` renders the whole decision for humans.
    """

    query: GraphQuery
    result: ExecutionResult
    used_view: MaterializedView | None = None
    rewrite: RewrittenQuery | None = None
    elapsed_seconds: float = 0.0
    plan: LogicalPlan | None = None
    base_cost: float | None = None
    rewrite_cost: float | None = None
    #: Name of the best applicable rewrite's view, set even when the base
    #: plan won the cost comparison and the view did not run.
    considered_view: str | None = None
    engine: str = "planner"
    #: When the adaptive lifecycle engine is enabled and this execution
    #: triggered an adaptation cycle, the cycle's report.
    adaptation: AdaptationReport | None = None
    #: Whether the plan that ran was served from the plan cache (None under
    #: the interpreter engine, which never plans).  The serving layer's
    #: metrics read this to report the plan-cache hit rate.
    plan_cache_hit: bool | None = None
    #: Graph ``version`` the query executed against (the pinned snapshot's
    #: version under MVCC serving, the live graph's otherwise).
    executed_version: int | None = None

    @property
    def used_view_name(self) -> str | None:
        return self.used_view.definition.name if self.used_view else None

    def feedback(self) -> WorkFeedback:
        """The execution-feedback sample this outcome contributes (stats hook).

        ``planned_cost`` is the cost of the plan that actually ran — the
        rewrite's when a view served the query, the base plan's otherwise —
        so observed/planned ratios compare like with like.
        """
        planned = self.rewrite_cost if self.used_view is not None else self.base_cost
        return WorkFeedback(
            signature=self.query.structural_signature(),
            observed_work=self.result.stats.total_work,
            planned_cost=planned,
            used_view=self.used_view_name,
            rows=len(self.result.rows),
        )

    def explain(self) -> str:
        """Human-readable account of the base-vs-view decision and the plan."""
        lines = []
        if self.base_cost is not None:
            lines.append(f"base plan cost: {self.base_cost:.1f}")
        if self.rewrite_cost is not None:
            label = self.used_view_name or self.considered_view or "?"
            lines.append(f"best view rewrite ({label}): {self.rewrite_cost:.1f}")
        chosen = "view rewrite" if self.used_view is not None else "base query"
        lines.append(f"chosen: {chosen} [engine={self.engine}]")
        if self.plan is not None:
            lines.append(self.plan.explain())
        return "\n".join(lines)


class Kaskade:
    """Graph query optimization framework with materialized graph views."""

    def __init__(self, graph: PropertyGraph, schema: GraphSchema | None = None,
                 alpha: float = DEFAULT_ALPHA,
                 knapsack_method: str = "branch_and_bound",
                 materialization_max_paths: int | None = None,
                 storage: StorageManager | None = None,
                 auto_refresh: bool = False,
                 change_log_capacity: int = 100_000) -> None:
        """Create a KASKADE instance for one base graph.

        Args:
            graph: The raw (or pre-summarized) graph.
            schema: Graph schema; inferred from the data when omitted.
            alpha: Out-degree percentile for view size estimation (§V-A).
            knapsack_method: Solver used for view selection.
            materialization_max_paths: Optional cap on paths contracted per
                connector view (protects dense homogeneous graphs).
            storage: Storage manager owning backend selection (freeze-to-CSR
                for read-mostly graphs and views, optional view persistence);
                a default-policy manager is created when omitted.
            auto_refresh: When true, every :meth:`execute` call that may use
                views first runs delta maintenance so rewrites never read a
                stale view; when false (default) the caller decides when to
                invoke :meth:`refresh_views`.
            change_log_capacity: Bound on the base graph's mutation log;
                deltas longer than this force view re-materialization.
        """
        self.graph = graph
        self.schema = schema or graph.infer_schema()
        self.alpha = alpha
        self.storage = storage or StorageManager()
        self.catalog = ViewCatalog(storage=self.storage)
        self.enumerator = ViewEnumerator(self.schema)
        self.statistics = compute_statistics(graph)
        self.cost_model = ViewCostModel(self.statistics, alpha=alpha, schema=self.schema)
        self.selector = ViewSelector(self.enumerator, self.cost_model,
                                     knapsack_method=knapsack_method)
        self.rewriter = QueryRewriter(self.schema)
        self.materialization_max_paths = materialization_max_paths
        self.auto_refresh = auto_refresh
        self.change_log_capacity = change_log_capacity
        # Delta-driven view maintenance.  The manager attaches change capture
        # to the base graph, so it is only created when maintenance is
        # actually wanted: eagerly under auto_refresh (capture must start
        # before the first mutation for deltas to be replayable), lazily on
        # the first refresh_views() call otherwise — read-only users keep the
        # graph's zero-overhead no-logging default.
        self._maintenance: MaintenanceManager | None = None
        if auto_refresh:
            self._maintenance = self._make_maintenance()
        # Query-signature -> rewrites discovered during selection, reused at
        # query time ("if this information is saved from the view selection
        # step ... we can leverage it without having to invoke the view
        # enumeration again").  Keyed by the *structural* signature: object
        # ids can be recycled after GC (serving another query's rewrites) and
        # per-object keys grow without bound.
        self._saved_rewrites: dict[str, list[RewrittenQuery]] = {}
        # Planner/cost-model caches, keyed by (graph name, version): rewrite
        # assessment touches every rewrite of every query, so statistics and
        # degree summaries must not be recomputed per rewrite.  Versioned
        # keys make mutations (base graph updates, view maintenance)
        # invalidate naturally.
        self._cost_models: dict[tuple[str, int | None], QueryCostModel] = {}
        self._planners: dict[tuple[str, int | None], QueryPlanner] = {}
        # (query signature, graph name, graph version) -> logical plan; the
        # per-query analogue of saved rewrites.
        self._saved_plans: dict[tuple[str, str, int | None], LogicalPlan] = {}
        # Workload-adaptive view lifecycle engine (opt-in via
        # enable_adaptive); when attached, every execute() feeds it.
        self.lifecycle: ViewLifecycleEngine | None = None
        # Optional metrics sink (duck-typed: anything with
        # observe_query(outcome)); every execute() notifies it.  The serving
        # layer attaches its registry here so query latency, plan-cache hit
        # rate, and view hit rate flow out of QueryOutcome without the core
        # importing the service package.
        self.metrics = None
        # Plan-cache hit/miss counters (read by the metrics layer).  Plain
        # ints updated without a lock: under concurrent readers a lost
        # increment skews the rate marginally, which is acceptable for
        # telemetry — the caches themselves are protected below.
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # Guards cache *mutation* (insert + eviction) in the planner/cost-
        # model/plan caches.  Lookups stay lock-free dict reads; only the
        # cold miss path takes the lock, so concurrent snapshot readers never
        # serialize on cache hits.
        self._cache_lock = threading.Lock()

    # ----------------------------------------------------------------- parsing
    def parse(self, text: str, name: str = "") -> GraphQuery:
        """Parse query text with the Cypher-like parser."""
        return parse_query(text, name=name)

    # --------------------------------------------------------------- analytics
    def analytics_store(self) -> GraphLike:
        """The representation analytics (Q1–Q8) should run against.

        Served through this instance's :class:`StorageManager` with a
        read-mostly hint, so a large enough base graph comes back as its
        cached CSR snapshot — which routes every :mod:`repro.analytics`
        function onto the index-space kernels
        (:mod:`repro.analytics.kernels`) instead of the per-vertex dict
        reference path.  Small graphs come back unchanged.
        """
        return self.storage.store_for(self.graph, workload="read_mostly")

    # ------------------------------------------------------------- enumeration
    def enumerate_views(self, query: GraphQuery) -> EnumerationResult:
        """Run constraint-based view enumeration for one query (§IV)."""
        return self.enumerator.enumerate(query)

    # --------------------------------------------------------------- selection
    def select_views(self, workload: Sequence[GraphQuery], budget_edges: float,
                     query_weights: Mapping[str, float] | None = None,
                     materialize: bool = True) -> MaterializationReport:
        """Select (and by default materialize) the best views for a workload (§V-B)."""
        start = time.perf_counter()
        selection = self.selector.select(workload, budget_edges, query_weights)
        materialized: list[MaterializedView] = []
        if materialize:
            for assessment in selection.selected:
                view = self.catalog.materialize(
                    self.graph, assessment.candidate.definition,
                    max_paths=self.materialization_max_paths)
                materialized.append(view)
                if self.lifecycle is not None:
                    # Against the raw estimate, never the calibrated one —
                    # see ViewLifecycleEngine._observe_view_size.
                    self.lifecycle.calibration.observe_view_size(
                        view.definition,
                        self.cost_model.estimator.raw_estimate(view.definition).edges,
                        view.graph.num_edges)
        for query in workload:
            self._save_rewrites(query, selection.rewrites_for(query))
        elapsed = time.perf_counter() - start
        return MaterializationReport(selection=selection, materialized=materialized,
                                     elapsed_seconds=elapsed)

    def materialize_view(self, candidate: ViewCandidate | ConnectorView | SummarizerView
                         ) -> MaterializedView:
        """Materialize a single view (bypassing selection)."""
        definition = candidate.definition if isinstance(candidate, ViewCandidate) else candidate
        return self.catalog.materialize(self.graph, definition,
                                        max_paths=self.materialization_max_paths)

    def evict_view(self, definition: ConnectorView | SummarizerView) -> MaterializedView:
        """Completely evict a materialized view.

        Beyond :meth:`ViewCatalog.drop` (which already releases the CSR
        snapshot, cached unions, and the persisted artifact through the
        storage manager), the planner/cost-model/plan caches keyed by the
        view graph's name are purged: a later re-materialization under the
        same name starts a fresh version counter, so stale per-version
        entries could otherwise serve outdated statistics.
        """
        view = self.catalog.drop(definition)
        graph_name = getattr(view.graph, "name", None)
        if graph_name is not None:
            self._cost_models = {key: model for key, model in self._cost_models.items()
                                 if key[0] != graph_name}
            self._planners = {key: planner for key, planner in self._planners.items()
                              if key[0] != graph_name}
            self._saved_plans = {key: plan for key, plan in self._saved_plans.items()
                                 if key[1] != graph_name}
        return view

    # ------------------------------------------------------ adaptive lifecycle
    def enable_adaptive(self, budget_edges: float | None = None, *,
                        adapt_every: int = 32,
                        config: LifecycleConfig | None = None) -> ViewLifecycleEngine:
        """Turn on the workload-adaptive view lifecycle engine.

        Every subsequent :meth:`execute` call (with ``use_views=True``)
        records the query's structural signature, frequency, and observed
        work in the engine's :class:`~repro.core.lifecycle.WorkloadLog`;
        after every ``adapt_every`` queries the engine re-runs
        frequency-weighted view selection under ``budget_edges``,
        materializes newly winning views, evicts the rest, and calibrates
        the cost model from execution feedback.

        Args:
            budget_edges: Space budget for re-selection (required unless a
                full ``config`` is given).
            adapt_every: Queries between automatic adaptation cycles.
            config: Full :class:`LifecycleConfig`, overriding the two
                shorthand arguments.

        Returns:
            The attached engine (also available as ``self.lifecycle``).
        """
        if config is None:
            if budget_edges is None:
                raise ViewError("enable_adaptive needs budget_edges or a config")
            config = LifecycleConfig(budget_edges=budget_edges,
                                     adapt_every=adapt_every)
        self.lifecycle = ViewLifecycleEngine(self, config)
        self.cost_model.attach_calibration(self.lifecycle.calibration)
        return self.lifecycle

    def adapt_views(self) -> AdaptationReport:
        """Run one adaptation cycle on demand (engine must be enabled)."""
        if self.lifecycle is None:
            raise ViewError("adaptive lifecycle not enabled; call enable_adaptive first")
        return self.lifecycle.adapt()

    # --------------------------------------------------------------- rewriting
    def _save_rewrites(self, query: GraphQuery, rewrites: list[RewrittenQuery]) -> None:
        """Remember selection-time rewrites under the query's structural key."""
        key = query.structural_signature()
        with self._cache_lock:
            if key not in self._saved_rewrites and len(self._saved_rewrites) >= _MAX_SAVED_REWRITES:
                self._saved_rewrites.pop(next(iter(self._saved_rewrites)), None)
            self._saved_rewrites[key] = rewrites

    def rewrite(self, query: GraphQuery) -> RewrittenQuery | None:
        """Find the best view-based rewrite of a query among materialized views (§V-C).

        Returns None when no materialized view produces a valid rewrite.
        """
        saved = self._saved_rewrites.get(query.structural_signature(), [])
        rewrites = [r for r in saved
                    if self.catalog.contains(r.candidate.definition)]
        if not rewrites:
            # Re-enumerate: generate candidates, prune those not materialized.
            candidates = [
                candidate for candidate in self.enumerate_views(query).candidates
                if self.catalog.contains(candidate.definition)
            ]
            rewrites = self.rewriter.applicable(query, candidates)
        if not rewrites:
            return None
        return min(rewrites, key=self._rewrite_cost)

    # ------------------------------------------------------ planning & costing
    def _graph_key(self, graph: GraphLike) -> tuple[str, int | None]:
        return (getattr(graph, "name", "?"), getattr(graph, "version", None))

    def cost_model_for(self, graph: GraphLike) -> QueryCostModel:
        """The AST-level cost model for a graph, cached per (name, version)."""
        key = self._graph_key(graph)
        model = self._cost_models.get(key)
        if model is None:
            model = QueryCostModel.for_graph(graph)
            with self._cache_lock:
                existing = self._cost_models.get(key)
                if existing is not None:
                    return existing
                if len(self._cost_models) >= _MAX_CACHED_MODELS:
                    self._cost_models.pop(next(iter(self._cost_models)), None)
                self._cost_models[key] = model
        return model

    def planner_for(self, graph: GraphLike) -> QueryPlanner:
        """The query planner for a graph, cached per (name, version).

        Shares the statistics already computed for the cached cost model, so
        assessing N rewrites against one view costs one degree scan total.
        """
        key = self._graph_key(graph)
        planner = self._planners.get(key)
        if planner is None:
            planner = QueryPlanner(statistics=self.cost_model_for(graph).statistics)
            with self._cache_lock:
                existing = self._planners.get(key)
                if existing is not None:
                    return existing
                if len(self._planners) >= _MAX_CACHED_MODELS:
                    self._planners.pop(next(iter(self._planners)), None)
                self._planners[key] = planner
        return planner

    def plan_for(self, query: GraphQuery, graph: GraphLike) -> LogicalPlan:
        """The logical plan of ``query`` over ``graph``.

        Cached per (structural query signature, graph name, graph version) —
        the execution-layer analogue of saved rewrites: repeated queries of a
        serving workload skip planning entirely until the target mutates.
        """
        name, version = self._graph_key(graph)
        key = (query.structural_signature(), name, version)
        plan = self._saved_plans.get(key)
        if plan is None:
            plan = self.planner_for(graph).plan(query)
            with self._cache_lock:
                if key not in self._saved_plans and len(self._saved_plans) >= _MAX_SAVED_PLANS:
                    self._saved_plans.pop(next(iter(self._saved_plans)), None)
                self._saved_plans[key] = plan
        return plan

    def plan_cached(self, query: GraphQuery, graph: GraphLike) -> bool:
        """Whether :meth:`plan_for` would hit the plan cache (no side effects)."""
        name, version = self._graph_key(graph)
        return (query.structural_signature(), name, version) in self._saved_plans

    def _count_plan_cache(self, cached: bool | None) -> None:
        """Tally one *executed query's* cache outcome (not raw lookups: one
        ``execute()`` calls :meth:`plan_for` more than once internally)."""
        if cached is None:
            return
        if cached:
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of executed queries whose plan came from the plan cache."""
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0

    def _rewrite_cost(self, rewrite: RewrittenQuery) -> float:
        """Planned evaluation cost of a rewrite over its materialized view.

        Costs the *plan* of the rewritten query against the view graph's
        statistics (pushdown and join order included), not the bare AST; the
        union graph of a mixed rewrite is approximated by the view graph to
        keep costing read-only.
        """
        view = self.catalog.find(rewrite.candidate.definition)
        if view is None:
            return float("inf")
        return self.plan_for(rewrite.rewritten, view.graph).estimated_cost

    # -------------------------------------------------------------- maintenance
    def _make_maintenance(self) -> MaintenanceManager:
        return MaintenanceManager(
            self.graph, self.catalog, storage=self.storage,
            log_capacity=self.change_log_capacity,
            max_paths=self.materialization_max_paths)

    @property
    def maintenance(self) -> MaintenanceManager:
        """The delta-maintenance subsystem (created — and change capture
        enabled — on first use)."""
        if self._maintenance is None:
            self._maintenance = self._make_maintenance()
        return self._maintenance

    def refresh_views(self) -> RefreshReport:
        """Bring every materialized view up to date with the base graph.

        Replays the change-capture delta through the maintenance subsystem:
        k-hop connectors and filter summarizers are maintained incrementally,
        the rest re-materialized; refreshed views get their read-optimized
        snapshots re-frozen by the storage manager.  On the very first call
        change capture may only just have been attached, in which case stale
        views are re-materialized once and maintained incrementally from then
        on.
        """
        return self.maintenance.refresh()

    # ---------------------------------------------------------------- execution
    def execute(self, query: GraphQuery, use_views: bool = True,
                max_work: int | None = None, engine: str = "planner",
                *, max_bindings: int | None = None) -> QueryOutcome:
        """Execute a query, choosing base vs. best view by planned cost.

        The decision mirrors §V-C at execution time: the base query is
        planned against the base graph, every applicable rewrite is planned
        against its view, and the cheaper plan runs (the view wins ties —
        its statistics are exact where the base estimate saturates).  The
        outcome records both costs and the executed plan.

        Args:
            query: Parsed query to run.
            use_views: Consider materialized-view rewrites at all.
            max_work: Work budget forwarded to the executor.
            engine: ``"planner"`` (default) or ``"interpreter"`` — the
                latter runs the seed backtracking engine (the same
                base-vs-view choice still applies) and is what differential
                tests compare against.
            max_bindings: Deprecated alias for ``max_work``.
        """
        start = time.perf_counter()
        if engine not in ENGINES:
            raise QueryExecutionError(
                f"unknown engine {engine!r}; expected one of {ENGINES}")
        if max_work is None:
            max_work = max_bindings
        if use_views and self.auto_refresh and len(self.catalog):
            self.refresh_views()
        base = self.storage.store_for(self.graph)
        # Sampled *before* planning: the base-plan lookup below populates the
        # cache within this very call, so a check afterwards would always
        # report a hit.  "Had we already planned this query shape against
        # this graph version" is the signal serving metrics want.
        cached = self.plan_cached(query, base) if engine == "planner" else None
        self._count_plan_cache(cached)
        base_cost = self.plan_for(query, base).estimated_cost
        rewrite = self.rewrite(query) if use_views else None
        rewrite_cost = self._rewrite_cost(rewrite) if rewrite is not None else None
        considered = rewrite.candidate.definition.name if rewrite is not None else None

        if rewrite is not None and rewrite_cost <= base_cost:
            view = self.catalog.get(rewrite.candidate.definition)
            target = self._target_graph(rewrite, view)
            result, plan = self._run(rewrite.rewritten, target, engine, max_work)
            outcome = QueryOutcome(query=query, result=result, used_view=view,
                                   rewrite=rewrite, plan=plan, base_cost=base_cost,
                                   rewrite_cost=rewrite_cost,
                                   considered_view=considered, engine=engine,
                                   plan_cache_hit=cached,
                                   executed_version=getattr(target, "version", None),
                                   elapsed_seconds=time.perf_counter() - start)
        else:
            result, plan = self._run(query, base, engine, max_work)
            outcome = QueryOutcome(query=query, result=result, plan=plan,
                                   base_cost=base_cost, rewrite_cost=rewrite_cost,
                                   considered_view=considered, engine=engine,
                                   plan_cache_hit=cached,
                                   executed_version=getattr(base, "version", None),
                                   elapsed_seconds=time.perf_counter() - start)
        # Feed the adaptive lifecycle engine; raw baselines (use_views=False)
        # stay out of the log so A/B comparisons don't skew the mix.
        if self.lifecycle is not None and use_views:
            outcome.adaptation = self.lifecycle.observe(query, outcome)
        if self.metrics is not None:
            self.metrics.observe_query(outcome)
        return outcome

    def _run(self, query: GraphQuery, target: GraphLike, engine: str,
             max_work: int | None) -> tuple[ExecutionResult, LogicalPlan | None]:
        """Run one query on one graph with the chosen engine."""
        if engine == "interpreter":
            result = QueryExecutor(target, max_work=max_work,
                                   engine="interpreter").execute(query)
            return result, None
        plan = self.plan_for(query, target)
        result = PhysicalExecutor(target, max_work=max_work).execute(plan)
        return result, plan

    def execute_text(self, text: str, name: str = "", use_views: bool = True,
                     engine: str = "planner") -> QueryOutcome:
        """Parse and execute query text."""
        return self.execute(self.parse(text, name=name), use_views=use_views,
                            engine=engine)

    def _target_graph(self, rewrite: RewrittenQuery, view: MaterializedView) -> GraphLike:
        """Pick the graph the rewritten query should run against.

        Summarizer rewrites run on the summarized graph.  Connector rewrites
        run on the connector graph when every edge pattern uses the connector's
        label; otherwise (mixed rewrites keeping a prefix/suffix of raw-graph
        hops) they run on the union of the base graph and the connector edges,
        which the storage manager caches across executions and rebuilds only
        when either side mutated.  Whenever the query runs wholly on the view,
        the view's read-optimized snapshot (if the storage manager attached
        one) serves it.
        """
        definition = rewrite.candidate.definition
        if isinstance(definition, SummarizerView):
            return view.read_store()
        labels = {edge.label for edge in rewrite.rewritten.edge_patterns()}
        if labels <= {definition.output_label}:
            return view.read_store()
        return self.storage.union_for(self.graph, view,
                                      name=f"{self.graph.name}+{definition.name}")

    # -------------------------------------------------------------- durability
    def _persistent_store(self, path, backend: str | None) -> PersistentViewStore:
        """Resolve the persistent store: an explicit path wins, otherwise the
        storage manager's attached store (``StorageManager(persist_path=...)``)."""
        if path is not None:
            return PersistentViewStore(path, backend=backend)
        if self.storage.persistent is not None:
            return self.storage.persistent
        raise ViewError(
            "no persistence target: pass a path, or create the Kaskade instance "
            "with storage=StorageManager(persist_path=...)")

    def persist_views(self, path=None, backend: str | None = None) -> PersistentViewStore:
        """Snapshot the current view catalog to disk; returns the store used.

        When the adaptive lifecycle engine is enabled, its advisor state
        (workload log + cost calibration) is checkpointed alongside the
        views, so a restarted process resumes selection from the same
        evidence.
        """
        store = self._persistent_store(path, backend)
        store.save_catalog(self.catalog)
        if self.lifecycle is not None:
            self.lifecycle.checkpoint(store)
        return store

    def restore_views(self, path=None, backend: str | None = None) -> int:
        """Reload previously persisted views into the catalog.

        Returns the number of views restored.  Restored views flow through
        :meth:`ViewCatalog.register`, so the storage manager freezes eligible
        ones just like fresh materializations.  When the adaptive lifecycle
        engine is enabled, any checkpointed advisor state is restored too
        (enable the engine *before* restoring).
        """
        store = self._persistent_store(path, backend)
        views = store.load_views()
        for view in views:
            self.catalog.register(view)
        if self.lifecycle is not None:
            self.lifecycle.restore(store)
        return len(views)
