"""The KASKADE facade: workload analyzer + query rewriter + execution engine.

This module ties every component of Fig. 2 together around one base graph:

* the **workload analyzer** (:meth:`Kaskade.select_views`) runs constraint-
  based view enumeration for a workload, assesses candidates with the cost
  model, solves the knapsack, and materializes the chosen views into the view
  catalog;
* the **query rewriter** (:meth:`Kaskade.rewrite`) finds, among the
  *materialized* views, the rewrite with the smallest estimated evaluation
  cost for an incoming query;
* the **execution engine** (:meth:`Kaskade.execute`) evaluates the original or
  rewritten query with the pattern-matching executor, automatically choosing
  the right target graph (the connector view's graph, a summarized graph, or
  the raw graph).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.cost_model import CandidateAssessment, ViewCostModel
from repro.errors import ViewError
from repro.core.enumerator import EnumerationResult, ViewEnumerator
from repro.core.estimator import DEFAULT_ALPHA
from repro.core.rewriter import QueryRewriter, RewrittenQuery
from repro.core.selection import SelectionResult, ViewSelector
from repro.core.templates import ViewCandidate
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import GraphSchema
from repro.graph.statistics import compute_statistics
from repro.query.ast import GraphQuery
from repro.query.cost import QueryCostModel
from repro.query.executor import ExecutionResult, QueryExecutor
from repro.query.parser import parse_query
from repro.storage.base import GraphLike
from repro.storage.manager import StorageManager
from repro.storage.persistent import PersistentViewStore
from repro.views.catalog import MaterializedView, ViewCatalog
from repro.views.definitions import ConnectorView, SummarizerView
from repro.views.delta import MaintenanceManager, RefreshReport

#: Saved per-query rewrites retained at once (oldest evicted first).
_MAX_SAVED_REWRITES = 512


@dataclass
class MaterializationReport:
    """What `select_views` chose and materialized."""

    selection: SelectionResult
    materialized: list[MaterializedView] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def view_names(self) -> list[str]:
        return [view.definition.name for view in self.materialized]


@dataclass
class QueryOutcome:
    """Result of executing a query through KASKADE."""

    query: GraphQuery
    result: ExecutionResult
    used_view: MaterializedView | None = None
    rewrite: RewrittenQuery | None = None
    elapsed_seconds: float = 0.0

    @property
    def used_view_name(self) -> str | None:
        return self.used_view.definition.name if self.used_view else None


class Kaskade:
    """Graph query optimization framework with materialized graph views."""

    def __init__(self, graph: PropertyGraph, schema: GraphSchema | None = None,
                 alpha: float = DEFAULT_ALPHA,
                 knapsack_method: str = "branch_and_bound",
                 materialization_max_paths: int | None = None,
                 storage: StorageManager | None = None,
                 auto_refresh: bool = False,
                 change_log_capacity: int = 100_000) -> None:
        """Create a KASKADE instance for one base graph.

        Args:
            graph: The raw (or pre-summarized) graph.
            schema: Graph schema; inferred from the data when omitted.
            alpha: Out-degree percentile for view size estimation (§V-A).
            knapsack_method: Solver used for view selection.
            materialization_max_paths: Optional cap on paths contracted per
                connector view (protects dense homogeneous graphs).
            storage: Storage manager owning backend selection (freeze-to-CSR
                for read-mostly graphs and views, optional view persistence);
                a default-policy manager is created when omitted.
            auto_refresh: When true, every :meth:`execute` call that may use
                views first runs delta maintenance so rewrites never read a
                stale view; when false (default) the caller decides when to
                invoke :meth:`refresh_views`.
            change_log_capacity: Bound on the base graph's mutation log;
                deltas longer than this force view re-materialization.
        """
        self.graph = graph
        self.schema = schema or graph.infer_schema()
        self.alpha = alpha
        self.storage = storage or StorageManager()
        self.catalog = ViewCatalog(storage=self.storage)
        self.enumerator = ViewEnumerator(self.schema)
        self.statistics = compute_statistics(graph)
        self.cost_model = ViewCostModel(self.statistics, alpha=alpha, schema=self.schema)
        self.selector = ViewSelector(self.enumerator, self.cost_model,
                                     knapsack_method=knapsack_method)
        self.rewriter = QueryRewriter(self.schema)
        self.materialization_max_paths = materialization_max_paths
        self.auto_refresh = auto_refresh
        self.change_log_capacity = change_log_capacity
        # Delta-driven view maintenance.  The manager attaches change capture
        # to the base graph, so it is only created when maintenance is
        # actually wanted: eagerly under auto_refresh (capture must start
        # before the first mutation for deltas to be replayable), lazily on
        # the first refresh_views() call otherwise — read-only users keep the
        # graph's zero-overhead no-logging default.
        self._maintenance: MaintenanceManager | None = None
        if auto_refresh:
            self._maintenance = self._make_maintenance()
        # Query-signature -> rewrites discovered during selection, reused at
        # query time ("if this information is saved from the view selection
        # step ... we can leverage it without having to invoke the view
        # enumeration again").  Keyed by the *structural* signature: object
        # ids can be recycled after GC (serving another query's rewrites) and
        # per-object keys grow without bound.
        self._saved_rewrites: dict[str, list[RewrittenQuery]] = {}

    # ----------------------------------------------------------------- parsing
    def parse(self, text: str, name: str = "") -> GraphQuery:
        """Parse query text with the Cypher-like parser."""
        return parse_query(text, name=name)

    # ------------------------------------------------------------- enumeration
    def enumerate_views(self, query: GraphQuery) -> EnumerationResult:
        """Run constraint-based view enumeration for one query (§IV)."""
        return self.enumerator.enumerate(query)

    # --------------------------------------------------------------- selection
    def select_views(self, workload: Sequence[GraphQuery], budget_edges: float,
                     query_weights: Mapping[str, float] | None = None,
                     materialize: bool = True) -> MaterializationReport:
        """Select (and by default materialize) the best views for a workload (§V-B)."""
        start = time.perf_counter()
        selection = self.selector.select(workload, budget_edges, query_weights)
        materialized: list[MaterializedView] = []
        if materialize:
            for assessment in selection.selected:
                view = self.catalog.materialize(
                    self.graph, assessment.candidate.definition,
                    max_paths=self.materialization_max_paths)
                materialized.append(view)
        for query in workload:
            self._save_rewrites(query, selection.rewrites_for(query))
        elapsed = time.perf_counter() - start
        return MaterializationReport(selection=selection, materialized=materialized,
                                     elapsed_seconds=elapsed)

    def materialize_view(self, candidate: ViewCandidate | ConnectorView | SummarizerView
                         ) -> MaterializedView:
        """Materialize a single view (bypassing selection)."""
        definition = candidate.definition if isinstance(candidate, ViewCandidate) else candidate
        return self.catalog.materialize(self.graph, definition,
                                        max_paths=self.materialization_max_paths)

    # --------------------------------------------------------------- rewriting
    def _save_rewrites(self, query: GraphQuery, rewrites: list[RewrittenQuery]) -> None:
        """Remember selection-time rewrites under the query's structural key."""
        key = query.structural_signature()
        if key not in self._saved_rewrites and len(self._saved_rewrites) >= _MAX_SAVED_REWRITES:
            self._saved_rewrites.pop(next(iter(self._saved_rewrites)))
        self._saved_rewrites[key] = rewrites

    def rewrite(self, query: GraphQuery) -> RewrittenQuery | None:
        """Find the best view-based rewrite of a query among materialized views (§V-C).

        Returns None when no materialized view produces a valid rewrite.
        """
        saved = self._saved_rewrites.get(query.structural_signature(), [])
        rewrites = [r for r in saved
                    if self.catalog.contains(r.candidate.definition)]
        if not rewrites:
            # Re-enumerate: generate candidates, prune those not materialized.
            candidates = [
                candidate for candidate in self.enumerate_views(query).candidates
                if self.catalog.contains(candidate.definition)
            ]
            rewrites = self.rewriter.applicable(query, candidates)
        if not rewrites:
            return None
        return min(rewrites, key=self._rewrite_cost)

    def _rewrite_cost(self, rewrite: RewrittenQuery) -> float:
        """Estimated evaluation cost of a rewrite over its materialized view."""
        view = self.catalog.find(rewrite.candidate.definition)
        if view is None:
            return float("inf")
        model = QueryCostModel.for_graph(view.graph)
        return model.estimate_total(rewrite.rewritten)

    # -------------------------------------------------------------- maintenance
    def _make_maintenance(self) -> MaintenanceManager:
        return MaintenanceManager(
            self.graph, self.catalog, storage=self.storage,
            log_capacity=self.change_log_capacity,
            max_paths=self.materialization_max_paths)

    @property
    def maintenance(self) -> MaintenanceManager:
        """The delta-maintenance subsystem (created — and change capture
        enabled — on first use)."""
        if self._maintenance is None:
            self._maintenance = self._make_maintenance()
        return self._maintenance

    def refresh_views(self) -> RefreshReport:
        """Bring every materialized view up to date with the base graph.

        Replays the change-capture delta through the maintenance subsystem:
        k-hop connectors and filter summarizers are maintained incrementally,
        the rest re-materialized; refreshed views get their read-optimized
        snapshots re-frozen by the storage manager.  On the very first call
        change capture may only just have been attached, in which case stale
        views are re-materialized once and maintained incrementally from then
        on.
        """
        return self.maintenance.refresh()

    # ---------------------------------------------------------------- execution
    def execute(self, query: GraphQuery, use_views: bool = True,
                max_bindings: int | None = None) -> QueryOutcome:
        """Execute a query, using the best materialized view when beneficial."""
        start = time.perf_counter()
        if use_views and self.auto_refresh and len(self.catalog):
            self.refresh_views()
        rewrite = self.rewrite(query) if use_views else None
        if rewrite is None:
            base = self.storage.store_for(self.graph)
            result = QueryExecutor(base, max_bindings=max_bindings).execute(query)
            return QueryOutcome(query=query, result=result,
                                elapsed_seconds=time.perf_counter() - start)
        view = self.catalog.get(rewrite.candidate.definition)
        target = self._target_graph(rewrite, view)
        result = QueryExecutor(target, max_bindings=max_bindings).execute(rewrite.rewritten)
        return QueryOutcome(query=query, result=result, used_view=view, rewrite=rewrite,
                            elapsed_seconds=time.perf_counter() - start)

    def execute_text(self, text: str, name: str = "", use_views: bool = True) -> QueryOutcome:
        """Parse and execute query text."""
        return self.execute(self.parse(text, name=name), use_views=use_views)

    def _target_graph(self, rewrite: RewrittenQuery, view: MaterializedView) -> GraphLike:
        """Pick the graph the rewritten query should run against.

        Summarizer rewrites run on the summarized graph.  Connector rewrites
        run on the connector graph when every edge pattern uses the connector's
        label; otherwise (mixed rewrites keeping a prefix/suffix of raw-graph
        hops) they run on the union of the base graph and the connector edges,
        which the storage manager caches across executions and rebuilds only
        when either side mutated.  Whenever the query runs wholly on the view,
        the view's read-optimized snapshot (if the storage manager attached
        one) serves it.
        """
        definition = rewrite.candidate.definition
        if isinstance(definition, SummarizerView):
            return view.read_store()
        labels = {edge.label for edge in rewrite.rewritten.edge_patterns()}
        if labels <= {definition.output_label}:
            return view.read_store()
        return self.storage.union_for(self.graph, view,
                                      name=f"{self.graph.name}+{definition.name}")

    # -------------------------------------------------------------- durability
    def _persistent_store(self, path, backend: str | None) -> PersistentViewStore:
        """Resolve the persistent store: an explicit path wins, otherwise the
        storage manager's attached store (``StorageManager(persist_path=...)``)."""
        if path is not None:
            return PersistentViewStore(path, backend=backend)
        if self.storage.persistent is not None:
            return self.storage.persistent
        raise ViewError(
            "no persistence target: pass a path, or create the Kaskade instance "
            "with storage=StorageManager(persist_path=...)")

    def persist_views(self, path=None, backend: str | None = None) -> PersistentViewStore:
        """Snapshot the current view catalog to disk; returns the store used."""
        store = self._persistent_store(path, backend)
        store.save_catalog(self.catalog)
        return store

    def restore_views(self, path=None, backend: str | None = None) -> int:
        """Reload previously persisted views into the catalog.

        Returns the number of views restored.  Restored views flow through
        :meth:`ViewCatalog.register`, so the storage manager freezes eligible
        ones just like fresh materializations.
        """
        store = self._persistent_store(path, backend)
        views = store.load_views()
        for view in views:
            self.catalog.register(view)
        return len(views)
