"""Graph view size estimation (§V-A, Equations 1-3).

The number of edges in a k-hop connector over a graph G equals the number of
k-length paths in G, so estimating connector sizes reduces to estimating path
counts.  Three estimators are provided:

* :func:`erdos_renyi_estimate` — Eq. 1, the expected number of k-length simple
  paths in a uniform random graph.  The paper reports (and Fig. 5 confirms)
  that this underestimates real graphs by orders of magnitude because degrees
  are neither uniform nor independent; it is kept as the ablation baseline.
* :func:`homogeneous_estimate` — Eq. 2, ``n · deg_α^k`` for single-type graphs.
* :func:`heterogeneous_estimate` — Eq. 3, ``Σ_t n_t · deg_α(t)^k`` summed over
  vertex types that are edge sources.

:class:`ViewSizeEstimator` picks the right formula for a
:class:`~repro.views.definitions.ViewDefinition` given the graph's degree
statistics, and also estimates summarizer sizes from per-type counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EstimationError
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import GraphSchema
from repro.graph.statistics import GraphStatistics, compute_statistics
from repro.views.definitions import ConnectorView, SummarizerView, ViewDefinition

#: Default out-degree percentile; §VII-D: "KASKADE relies on the estimator
#: parameterized with α = 95 as it provides an upper bound for most real-world
#: graphs that we have observed."
DEFAULT_ALPHA = 95.0


def erdos_renyi_estimate(num_vertices: int, num_edges: int, k: int) -> float:
    """Eq. 1: expected number of k-length simple paths in an Erdős–Rényi graph.

    ``E(G, k) = C(n, k+1) * (m / C(n, 2))^k``
    """
    if k < 1:
        raise EstimationError(f"k must be >= 1, got {k}")
    if num_vertices < k + 1 or num_vertices < 2:
        return 0.0
    choose_paths = math.comb(num_vertices, k + 1)
    density = num_edges / math.comb(num_vertices, 2)
    return float(choose_paths) * (density ** k)


def homogeneous_estimate(num_vertices: int, degree_alpha: float, k: int) -> float:
    """Eq. 2: ``n · deg_α^k`` for homogeneous graphs."""
    if k < 1:
        raise EstimationError(f"k must be >= 1, got {k}")
    return float(num_vertices) * (degree_alpha ** k)


def heterogeneous_estimate(statistics: GraphStatistics, k: int,
                           alpha: float = DEFAULT_ALPHA) -> float:
    """Eq. 3: ``Σ_{t ∈ T_G} n_t · deg_α(t)^k`` over source vertex types."""
    if k < 1:
        raise EstimationError(f"k must be >= 1, got {k}")
    total = 0.0
    for vertex_type in statistics.source_types():
        count = statistics.vertex_count(vertex_type)
        degree = statistics.degree_at(alpha, vertex_type)
        total += count * (degree ** k)
    return total


@dataclass
class SizeEstimate:
    """A view size estimate with the inputs that produced it."""

    edges: float
    method: str
    alpha: float | None = None
    k: int | None = None

    def __float__(self) -> float:
        return float(self.edges)


class ViewSizeEstimator:
    """Estimates the materialized size (in edges) of connector and summarizer views.

    When a schema is supplied, connector estimates over heterogeneous graphs
    follow the feasible k-walks of the schema type graph (multiplying the
    per-type ``deg_α`` along each walk) instead of using a single mixed
    branching factor — the same structural information the constraint mining
    rules exploit, and a substantially tighter bound on alternating-type paths
    such as job→file→job.
    """

    def __init__(self, statistics: GraphStatistics, alpha: float = DEFAULT_ALPHA,
                 schema: "GraphSchema | None" = None) -> None:
        self.statistics = statistics
        self.alpha = alpha
        self.schema = schema
        #: Optional execution-feedback calibration (duck-typed: anything with
        #: ``size_factor(definition) -> float``).  When attached, every
        #: estimate is scaled by the learned actual/estimated ratio of the
        #: view's template — the online correction for the systematic bias of
        #: any single α percentile on a particular graph.
        self.calibration = None

    @classmethod
    def for_graph(cls, graph: PropertyGraph, alpha: float = DEFAULT_ALPHA,
                  infer_schema: bool = True) -> "ViewSizeEstimator":
        """Build an estimator directly from a graph (computing its statistics)."""
        schema = graph.infer_schema() if infer_schema else graph.schema
        return cls(compute_statistics(graph), alpha=alpha, schema=schema)

    # ------------------------------------------------------------------ public
    def estimate(self, view: ViewDefinition) -> SizeEstimate:
        """Estimate the number of edges ``view`` would have when materialized."""
        estimate = self.raw_estimate(view)
        if self.calibration is not None:
            factor = self.calibration.size_factor(view)
            if factor != 1.0:
                estimate = SizeEstimate(edges=estimate.edges * factor,
                                        method=f"{estimate.method}+calibrated",
                                        alpha=estimate.alpha, k=estimate.k)
        return estimate

    def raw_estimate(self, view: ViewDefinition) -> SizeEstimate:
        """The statistics-only estimate, never scaled by calibration.

        Calibration ratios must be observed against *this* value — observing
        against the calibrated estimate would feed the factor back into its
        own denominator and converge it to ``sqrt(actual/raw)`` instead of
        ``actual/raw``.
        """
        if isinstance(view, ConnectorView):
            return self.estimate_connector(view)
        if isinstance(view, SummarizerView):
            return self.estimate_summarizer(view)
        raise EstimationError(f"cannot estimate views of type {type(view)!r}")

    def estimate_connector(self, view: ConnectorView) -> SizeEstimate:
        """Connector size = estimated number of qualifying k-length paths."""
        k = view.k if view.k is not None else max(2, view.max_hops // 2)
        if self._is_homogeneous():
            edges = homogeneous_estimate(
                self.statistics.total_vertices,
                self.statistics.degree_at(self.alpha),
                k,
            )
            method = "eq2-homogeneous"
        else:
            edges = self._heterogeneous_connector_estimate(view, k)
            method = "eq3-heterogeneous"
        return SizeEstimate(edges=edges, method=method, alpha=self.alpha, k=k)

    def estimate_summarizer(self, view: SummarizerView) -> SizeEstimate:
        """Summarizer size from per-type vertex counts and degree summaries.

        The paper notes summarizer estimation can reuse relational selectivity
        machinery (§V-A); with only type predicates, the edge count of a
        vertex-inclusion summarizer is bounded by the total out-degree mass of
        the kept types, which is what we use here.
        """
        kind = view.summarizer_kind
        if kind in ("vertex_inclusion", "vertex_removal"):
            if kind == "vertex_inclusion":
                kept = set(view.vertex_types)
            else:
                kept = {t for t in self.statistics.source_types()
                        if t not in set(view.vertex_types)}
                kept |= {t for t in self.statistics.per_type if t not in
                         set(view.vertex_types) and t != "*"}
            edges = 0.0
            for vertex_type in kept:
                summary = self.statistics.per_type.get(vertex_type)
                if summary is not None:
                    edges += summary.edge_count
            return SizeEstimate(edges=edges, method="summarizer-degree-mass")
        if kind in ("edge_inclusion", "edge_removal"):
            # Without per-label statistics, assume labels split edge mass evenly.
            total_edges = self.statistics.total_edges
            labels = max(len(view.edge_labels), 1)
            fraction = min(1.0, labels / max(self._distinct_label_guess(), 1))
            edges = total_edges * fraction if kind == "edge_inclusion" else total_edges * (
                1 - fraction)
            return SizeEstimate(edges=edges, method="summarizer-label-fraction")
        # Aggregators: bounded by the number of groups squared, but never more
        # than the original edge count.
        return SizeEstimate(edges=float(self.statistics.total_edges),
                            method="summarizer-aggregator-upper-bound")

    def erdos_renyi(self, k: int) -> SizeEstimate:
        """Eq. 1 estimate for this graph (ablation baseline)."""
        edges = erdos_renyi_estimate(self.statistics.total_vertices,
                                     self.statistics.total_edges, k)
        return SizeEstimate(edges=edges, method="eq1-erdos-renyi", k=k)

    # ----------------------------------------------------------------- internal
    def _is_homogeneous(self) -> bool:
        types = [t for t in self.statistics.per_type if t != "*"]
        return len(types) <= 1

    def _heterogeneous_connector_estimate(self, view: ConnectorView, k: int) -> float:
        """Eq. 3, restricted to the connector's source type when it has one."""
        if view.source_type is not None:
            summary = self.statistics.per_type.get(view.source_type)
            if summary is None:
                return 0.0
            schema_walk_estimate = self._schema_walk_estimate(view, k, summary.vertex_count)
            if schema_walk_estimate is not None:
                return schema_walk_estimate
            # Without a schema, fall back to a single mixed branching factor:
            # each of the n_t sources starts at most branching^k k-length paths.
            branching = self._mean_source_degree()
            return summary.vertex_count * (branching ** k)
        return heterogeneous_estimate(self.statistics, k, self.alpha)

    def _schema_walk_estimate(self, view: ConnectorView, k: int,
                              source_count: int) -> float | None:
        """Sum over feasible schema k-walks of ``n_source · Π deg_α(type_i)``.

        Returns None when no schema is attached (caller falls back to the
        mixed-branching estimate) and 0.0 when the schema admits no such walk.
        """
        if self.schema is None or view.source_type is None:
            return None
        target_type = view.target_type or view.source_type
        walks = self.schema.k_hop_paths(k, start=view.source_type, end=target_type,
                                        mode="walk", max_paths=256)
        total = 0.0
        for walk in walks:
            branching = 1.0
            for edge_type in walk:
                branching *= max(self.statistics.degree_at(self.alpha, edge_type.source), 0.0)
            total += source_count * branching
        return total

    def _mean_source_degree(self) -> float:
        degrees = [
            self.statistics.degree_at(self.alpha, t)
            for t in self.statistics.source_types()
        ]
        positive = [d for d in degrees if d > 0]
        if not positive:
            return 0.0
        return sum(positive) / len(positive)

    def _distinct_label_guess(self) -> int:
        """Rough count of distinct edge labels (2 per source type pair heuristic)."""
        return max(len(self.statistics.source_types()), 1) * 2
