"""View selection (§V-B).

Given a query workload, view selection determines the most effective views to
materialize under a space budget.  The problem is formulated as a 0-1 knapsack
(the OR-tools role is played by :mod:`repro.solver.knapsack`):

* items  — candidate views from the constraint-based enumerator,
* weight — estimated view size (edges),
* value  — summed per-query performance improvement divided by the view's
  creation cost (optionally weighted per query, e.g. by frequency),
* capacity — the space budget dedicated to materialized views.

Candidates produced for different queries that describe the same view (same
definition signature) are merged into a single knapsack item whose value
accumulates every query's improvement — the "performance improvement of v for
Q is the sum of v's improvement for each query in Q" formulation of §V-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.cost_model import CandidateAssessment, ViewBenefit, ViewCostModel
from repro.core.enumerator import ViewEnumerator
from repro.core.rewriter import RewrittenQuery
from repro.core.templates import ViewCandidate
from repro.errors import SelectionError
from repro.query.ast import GraphQuery
from repro.solver.knapsack import KnapsackItem, solve


@dataclass
class SelectionResult:
    """Output of view selection for a workload."""

    selected: list[CandidateAssessment] = field(default_factory=list)
    rejected: list[CandidateAssessment] = field(default_factory=list)
    budget: float = 0.0
    total_weight: float = 0.0
    total_value: float = 0.0

    @property
    def selected_candidates(self) -> list[ViewCandidate]:
        return [assessment.candidate for assessment in self.selected]

    def rewrites_for(self, query: GraphQuery) -> list[RewrittenQuery]:
        """Rewrites of ``query`` that the selected views enable (§V-B byproduct).

        Keyed by the query's *structural signature*: ``id()`` keys alias after
        GC reuse and can never match a re-parsed (or unnamed) query object.
        """
        key = query.structural_signature()
        rewrites = []
        for assessment in self.selected:
            rewrite = assessment.rewrites.get(key)
            if rewrite is not None:
                rewrites.append(rewrite)
        return rewrites

    def __len__(self) -> int:
        return len(self.selected)


class ViewSelector:
    """Selects the views to materialize for a workload under a space budget."""

    def __init__(self, enumerator: ViewEnumerator, cost_model: ViewCostModel,
                 knapsack_method: str = "branch_and_bound") -> None:
        self.enumerator = enumerator
        self.cost_model = cost_model
        self.knapsack_method = knapsack_method

    def select(self, workload: Sequence[GraphQuery], budget: float,
               query_weights: Mapping[str, float] | None = None) -> SelectionResult:
        """Select views for a workload.

        Args:
            workload: Queries the views should speed up.
            budget: Space budget in estimated edges.
            query_weights: Optional per-query weights (e.g. relative frequency)
                applied to each query's improvement, keyed by structural query
                signature (preferred) or by query name.

        Raises:
            SelectionError: If the budget is negative.
        """
        if budget < 0:
            raise SelectionError(f"budget must be >= 0, got {budget}")
        assessments = self.assess_workload(workload, query_weights)

        # Candidates that help no query, or that cannot possibly fit, are
        # rejected up-front; the knapsack only sees useful, feasible items.
        useful = [a for a in assessments
                  if a.total_improvement > 0 and a.knapsack_weight <= budget]
        rejected = [a for a in assessments if a not in useful]

        items = [
            KnapsackItem(value=a.knapsack_value, weight=a.knapsack_weight, payload=a)
            for a in useful
        ]
        solution = solve(items, budget, method=self.knapsack_method)
        chosen_indexes = set(solution.chosen)
        selected = [useful[i] for i in range(len(useful)) if i in chosen_indexes]
        rejected.extend(useful[i] for i in range(len(useful)) if i not in chosen_indexes)

        return SelectionResult(
            selected=selected,
            rejected=rejected,
            budget=budget,
            total_weight=solution.total_weight,
            total_value=solution.total_value,
        )

    def assess_workload(self, workload: Sequence[GraphQuery],
                        query_weights: Mapping[str, float] | None = None
                        ) -> list[CandidateAssessment]:
        """Enumerate and assess every distinct candidate view for a workload.

        Candidates with the same definition signature (derived from different
        queries) are merged: their benefits accumulate into one assessment.
        """
        weights = dict(query_weights or {})
        grouped: dict[tuple, list[tuple[ViewCandidate, GraphQuery]]] = {}
        order: list[tuple] = []

        for query, result in zip(workload, self.enumerator.enumerate_workload(workload)):
            for candidate in result.candidates:
                signature = candidate.definition.signature()
                if signature not in grouped:
                    grouped[signature] = []
                    order.append(signature)
                grouped[signature].append((candidate, query))

        assessments: list[CandidateAssessment] = []
        for signature in order:
            group = grouped[signature]
            representative = group[0][0]
            size = self.cost_model.view_size(representative)
            assessment = CandidateAssessment(
                candidate=representative,
                size_estimate=size,
                creation_cost=self.cost_model.creation_cost(representative, size),
            )
            for candidate, query in group:
                query_key = query.structural_signature()
                rewrite = self.cost_model.rewriter.rewrite(query, candidate)
                if rewrite is None:
                    continue
                raw_cost = self.cost_model.query_cost(query)
                # Weights may be keyed by structural signature (the workload
                # log's unit) or by query name (the historical public API).
                raw_cost *= weights.get(query_key, weights.get(query.name, 1.0))
                rewritten_cost = self.cost_model.rewritten_query_cost(rewrite, size)
                assessment.benefits.append(ViewBenefit(
                    query_name=query.name or query_key,
                    raw_cost=raw_cost,
                    rewritten_cost=rewritten_cost,
                ))
                assessment.rewrites[query_key] = rewrite
            assessments.append(assessment)
        return assessments
