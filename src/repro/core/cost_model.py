"""Cost model for graph views (§V-A).

Three quantities drive view selection and view-based rewriting:

* **View size** — estimated number of edges when materialized
  (:mod:`repro.core.estimator`), used both as the knapsack weight and as the
  basis of the creation cost.
* **View creation cost** — the I/O-dominated cost of computing and writing the
  view's edges; the paper models it as directly proportional to the estimated
  view size.
* **Query evaluation cost** — the cost of evaluating a query over a graph,
  estimated with the traversal cost model of :mod:`repro.query.cost`.  The
  *performance improvement* of a view v for a query q is
  ``EvalCost(q) / EvalCost(q rewritten over v)``, and the knapsack value of v
  is the summed improvement over the workload divided by v's creation cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.estimator import DEFAULT_ALPHA, SizeEstimate, ViewSizeEstimator
from repro.core.rewriter import QueryRewriter, RewrittenQuery
from repro.core.templates import ViewCandidate
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import GraphSchema
from repro.graph.statistics import (
    GraphStatistics,
    TypeDegreeSummary,
    compute_statistics,
)
from repro.query.ast import GraphQuery
from repro.query.cost import QueryCostModel
from repro.views.definitions import ConnectorView, SummarizerView


@dataclass(frozen=True)
class ViewBenefit:
    """How much one view helps one query."""

    query_name: str
    raw_cost: float
    rewritten_cost: float

    @property
    def improvement(self) -> float:
        """Cost ratio raw / rewritten (1.0 = no help)."""
        if self.rewritten_cost <= 0:
            return float("inf")
        return self.raw_cost / self.rewritten_cost


@dataclass
class CandidateAssessment:
    """Aggregated cost-model outputs for one candidate view over a workload."""

    candidate: ViewCandidate
    size_estimate: SizeEstimate
    creation_cost: float
    benefits: list[ViewBenefit] = field(default_factory=list)
    rewrites: dict[str, RewrittenQuery] = field(default_factory=dict)

    #: Minimum cost ratio for a rewrite to count as an improvement; filters out
    #: rewrites whose estimated gain is within the cost model's noise.
    IMPROVEMENT_THRESHOLD = 1.05

    @property
    def total_improvement(self) -> float:
        """Summed improvement over the workload (0 when the view helps nothing)."""
        return sum(b.improvement for b in self.benefits
                   if b.improvement > self.IMPROVEMENT_THRESHOLD)

    @property
    def knapsack_value(self) -> float:
        """Improvement per unit of creation cost (the §V-B item value)."""
        if self.creation_cost <= 0:
            return self.total_improvement
        return self.total_improvement / self.creation_cost

    @property
    def knapsack_weight(self) -> float:
        """Estimated view size (the §V-B item weight)."""
        return max(float(self.size_estimate.edges), 0.0)


class ViewCostModel:
    """Combines size estimation, creation cost, and query evaluation cost."""

    #: Creation cost per (estimated) materialized edge.  Only the *relative*
    #: magnitude matters, since values are ratios of costs.
    CREATION_COST_PER_EDGE = 1.0

    def __init__(self, graph_statistics: GraphStatistics,
                 alpha: float = DEFAULT_ALPHA,
                 query_cost_alpha: float = 90.0,
                 schema: "GraphSchema | None" = None) -> None:
        self.statistics = graph_statistics
        self.alpha = alpha
        # α = 95 (the default) upper-bounds view sizes for the space budget and
        # creation cost (§VII-D); the expected-case α = 50 estimate is used when
        # predicting the rewritten query's evaluation cost, since 50 ≤ α ≤ 95
        # "gives a much more accurate estimate" of the typical size.
        self.estimator = ViewSizeEstimator(graph_statistics, alpha=alpha, schema=schema)
        self.expected_estimator = ViewSizeEstimator(graph_statistics, alpha=min(alpha, 50.0), schema=schema)
        self.query_cost_model = QueryCostModel(graph_statistics, alpha=query_cost_alpha)
        self.query_cost_alpha = query_cost_alpha
        self.rewriter = QueryRewriter(schema)
        #: Optional execution-feedback calibration (duck-typed: anything with
        #: ``query_factor(query)`` / ``size_factor(definition)``, e.g.
        #: :class:`repro.core.lifecycle.CostCalibration`).
        self.calibration = None

    def attach_calibration(self, calibration) -> None:
        """Apply execution-feedback correction factors to future estimates.

        ``calibration.query_factor(query)`` scales raw query-cost estimates
        and ``calibration.size_factor(definition)`` scales view-size
        estimates (both estimators share the one calibration object, so the
        budget-bounding and expected-case estimates shift together).
        """
        self.calibration = calibration
        self.estimator.calibration = calibration
        self.expected_estimator.calibration = calibration

    @classmethod
    def for_graph(cls, graph: PropertyGraph, alpha: float = DEFAULT_ALPHA) -> "ViewCostModel":
        """Build a cost model directly from a graph (inferring its schema)."""
        return cls(compute_statistics(graph), alpha=alpha, schema=graph.infer_schema())

    # --------------------------------------------------------------- components
    def view_size(self, candidate: ViewCandidate) -> SizeEstimate:
        """Estimated size (edges) of the candidate when materialized."""
        return self.estimator.estimate(candidate.definition)

    def creation_cost(self, candidate: ViewCandidate,
                      size: SizeEstimate | None = None) -> float:
        """Creation cost, proportional to the estimated size (§V-A)."""
        size = size or self.view_size(candidate)
        return max(float(size.edges), 1.0) * self.CREATION_COST_PER_EDGE

    def query_cost(self, query: GraphQuery) -> float:
        """Evaluation cost of a query over the raw graph.

        When a calibration is attached, the statistics-driven estimate is
        scaled by the template's learned observed/estimated work ratio.
        """
        cost = self.query_cost_model.estimate_total(query)
        if self.calibration is not None:
            cost *= self.calibration.query_factor(query)
        return cost

    def rewritten_query_cost(self, rewrite: RewrittenQuery,
                             size: SizeEstimate | None = None) -> float:
        """Evaluation cost of the rewritten query over the (estimated) view graph."""
        view_stats = self._estimated_view_statistics(rewrite, size)
        model = QueryCostModel(view_stats, alpha=self.query_cost_alpha)
        return model.estimate_total(rewrite.rewritten)

    # ------------------------------------------------------------- assessments
    def assess(self, candidate: ViewCandidate,
               workload: Sequence[GraphQuery]) -> CandidateAssessment:
        """Assess one candidate against a workload: size, cost, and benefits."""
        size = self.view_size(candidate)
        assessment = CandidateAssessment(
            candidate=candidate,
            size_estimate=size,
            creation_cost=self.creation_cost(candidate, size),
        )
        for query in workload:
            rewrite = self.rewriter.rewrite(query, candidate)
            if rewrite is None:
                continue
            raw = self.query_cost(query)
            rewritten = self.rewritten_query_cost(rewrite, size)
            # Rewrites are keyed by the structural signature (stable across
            # re-parses and safe for unnamed queries, unlike id()); benefits
            # keep the human-readable name for reporting when one exists.
            query_key = query.structural_signature()
            assessment.benefits.append(ViewBenefit(
                query_name=query.name or query_key,
                raw_cost=raw,
                rewritten_cost=rewritten,
            ))
            assessment.rewrites[query_key] = rewrite
        return assessment

    def assess_all(self, candidates: Iterable[ViewCandidate],
                   workload: Sequence[GraphQuery]) -> list[CandidateAssessment]:
        """Assess every candidate against the workload."""
        return [self.assess(candidate, workload) for candidate in candidates]

    # ----------------------------------------------------------------- internal
    def _estimated_view_statistics(self, rewrite: RewrittenQuery,
                                   size: SizeEstimate | None) -> GraphStatistics:
        """Synthesize degree statistics for a not-yet-materialized view.

        The view graph's vertices are the endpoint-type vertices of the base
        graph; its edge count is the estimated view size.  The per-vertex
        branching factor is edges / vertices, which is what the traversal cost
        model needs.
        """
        definition = rewrite.candidate.definition
        if isinstance(definition, SummarizerView):
            return self._summarizer_statistics(definition)
        assert isinstance(definition, ConnectorView)
        # Expected-case size, not the α = 95 upper bound: the upper bound is for
        # budgeting, while here we predict typical traversal work on the view.
        size = self.expected_estimator.estimate(definition)
        if definition.source_type is not None:
            vertex_count = max(self.statistics.vertex_count(definition.source_type), 1)
        else:
            vertex_count = max(self.statistics.total_vertices, 1)
        if definition.target_type not in (None, definition.source_type):
            vertex_count += self.statistics.vertex_count(definition.target_type)
        edge_count = max(int(size.edges), 0)
        degree = edge_count / max(vertex_count, 1)
        summary = TypeDegreeSummary(
            vertex_type=definition.source_type or "*",
            vertex_count=vertex_count,
            edge_count=edge_count,
            percentiles={50.0: degree, 90.0: degree, 95.0: degree, 100.0: degree},
            mean_out_degree=degree,
            max_out_degree=int(degree) + 1,
        )
        stats = GraphStatistics(
            graph_name=f"view::{definition.name}",
            total_vertices=vertex_count,
            total_edges=edge_count,
        )
        stats.per_type[summary.vertex_type] = summary
        stats.per_type["*"] = TypeDegreeSummary(
            vertex_type="*",
            vertex_count=vertex_count,
            edge_count=edge_count,
            percentiles=dict(summary.percentiles),
            mean_out_degree=degree,
            max_out_degree=summary.max_out_degree,
        )
        return stats

    def _summarizer_statistics(self, definition: SummarizerView) -> GraphStatistics:
        """Statistics of a summarized graph: only the kept types' mass remains."""
        kept_types = set(definition.vertex_types)
        stats = GraphStatistics(graph_name=f"view::{definition.name}",
                                total_vertices=0, total_edges=0)
        for vertex_type, summary in self.statistics.per_type.items():
            if vertex_type == "*":
                continue
            keep = (vertex_type in kept_types
                    if definition.summarizer_kind == "vertex_inclusion"
                    else vertex_type not in kept_types)
            if not keep:
                continue
            stats.per_type[vertex_type] = summary
            stats.total_vertices += summary.vertex_count
            stats.total_edges += summary.edge_count
        if stats.per_type:
            overall_degrees = [s.mean_out_degree for s in stats.per_type.values()]
            mean_degree = sum(overall_degrees) / len(overall_degrees)
            stats.per_type["*"] = TypeDegreeSummary(
                vertex_type="*",
                vertex_count=stats.total_vertices,
                edge_count=stats.total_edges,
                percentiles={50.0: mean_degree, 90.0: mean_degree,
                             95.0: mean_degree, 100.0: mean_degree},
                mean_out_degree=mean_degree,
                max_out_degree=int(mean_degree) + 1,
            )
        return stats
