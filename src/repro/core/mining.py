"""Implicit constraint mining rules (§IV-A2, Listings 2 and 6).

Explicit facts alone still admit many infeasible views (e.g. odd-length
job-to-job connectors, or connectors longer than the query's hop bound).
Kaskade therefore ships a library of *constraint mining rules* that derive
implicit constraints from the explicit facts at enumeration time.  This module
provides that library as :class:`~repro.inference.Rule` objects:

* ``schemaKHopPath/3`` — whether a k-length path between two vertex *types* is
  feasible over the schema.  We use walk semantics over the type graph (types
  may repeat), which is the data-level notion of feasibility and matches the
  instantiations the paper reports in §IV-B (job-to-job connectors for
  k = 2, 4, 6, 8, 10).  The literal Listing 2 rule (trail semantics) is also
  provided as ``schemaKHopSimplePath`` for comparison, together with the
  procedural Algorithm 1.
* ``queryKHopPath/3``, ``queryKHopVariableLengthPath/3``, ``queryPath/2`` —
  path constraints over the query graph (Listing 6), which bound the k values
  worth considering.
* ``queryVertexSource/1``, ``queryVertexSink/1`` and the degree helpers —
  used by the source-to-sink connector template.
"""

from __future__ import annotations

from repro.graph.schema import GraphSchema
from repro.inference.terms import Rule, rule, struct, var


def schema_mining_rules() -> list[Rule]:
    """Constraint mining rules over the schema facts."""
    X, Y, Z = var("X"), var("Y"), var("Z")
    K, K1 = var("K"), var("K1")
    Trail = var("Trail")
    rules: list[Rule] = []

    # schemaKHopPath(X, Y, K): a K-length walk exists between types X and Y.
    # K must be bound by the caller (the view templates bind it from the
    # query's hop constraints before consulting the schema).
    rules.append(rule(
        struct("schemaKHopPath", X, Y, 1),
        struct("schemaEdge", X, Y, var("_L")),
    ))
    rules.append(rule(
        struct("schemaKHopPath", X, Y, K),
        struct(">", K, 1),
        struct("is", K1, struct("-", K, 1)),
        struct("schemaEdge", X, Z, var("_L2")),
        struct("schemaKHopPath", Z, Y, K1),
    ))

    # schemaPath(X, Y): some directed path exists between types X and Y
    # (transitive closure with a trail so it terminates on cyclic schemas).
    rules.append(rule(
        struct("schemaPath", X, Y),
        struct("schemaPathTrail", X, Y, [X]),
    ))
    rules.append(rule(
        struct("schemaPathTrail", X, Y, var("_T")),
        struct("schemaEdge", X, Y, var("_L3")),
    ))
    rules.append(rule(
        struct("schemaPathTrail", X, Y, Trail),
        struct("schemaEdge", X, Z, var("_L4")),
        struct("not", struct("member", Z, Trail)),
        struct("schemaPathTrail", Z, Y, struct(".", Z, Trail)),
    ))

    # schemaKHopSimplePath(X, Y, K): the literal Listing 2 rule — acyclic over
    # vertex types (trail check), generative in K.
    rules.append(rule(
        struct("schemaKHopSimplePath", X, Y, K),
        struct("schemaKHopSimplePath", X, Y, K, []),
    ))
    rules.append(rule(
        struct("schemaKHopSimplePath", X, Y, 1, var("_T5")),
        struct("schemaEdge", X, Y, var("_L5")),
    ))
    rules.append(rule(
        struct("schemaKHopSimplePath", X, Y, K, Trail),
        struct("schemaEdge", X, Z, var("_L6")),
        struct("not", struct("member", Z, Trail)),
        struct("schemaKHopSimplePath", Z, Y, K1, struct(".", X, Trail)),
        struct("is", K, struct("+", K1, 1)),
    ))
    return rules


def query_mining_rules() -> list[Rule]:
    """Constraint mining rules over the query facts (Listing 6)."""
    X, Y, Z = var("X"), var("Y"), var("Z")
    K, K1, K2 = var("K"), var("K1"), var("K2")
    Lower, Upper = var("LOWER"), var("UPPER")
    rules: list[Rule] = []

    # Query k-hop variable-length paths.
    rules.append(rule(
        struct("queryKHopVariableLengthPath", X, Y, K),
        struct("queryVariableLengthPath", X, Y, Lower, Upper),
        struct("between", Lower, Upper, K),
    ))

    # Query k-hop paths.
    rules.append(rule(
        struct("queryKHopPath", X, Y, 1),
        struct("queryEdge", X, Y),
    ))
    rules.append(rule(
        struct("queryKHopPath", X, Y, K),
        struct("queryKHopVariableLengthPath", X, Y, K),
    ))
    rules.append(rule(
        struct("queryKHopPath", X, Y, K),
        struct("queryEdge", X, Z),
        struct("queryKHopPath", Z, Y, K1),
        struct("is", K, struct("+", K1, 1)),
    ))
    rules.append(rule(
        struct("queryKHopPath", X, Y, K),
        struct("queryKHopVariableLengthPath", X, Z, K2),
        struct("queryKHopPath", Z, Y, K1),
        struct("is", K, struct("+", K1, K2)),
    ))

    # Query paths (any length).
    rules.append(rule(
        struct("queryPath", X, Y),
        struct("queryEdge", X, Y),
    ))
    rules.append(rule(
        struct("queryPath", X, Y),
        struct("queryKHopPath", X, Y, var("_K")),
    ))
    rules.append(rule(
        struct("queryPath", X, Y),
        struct("queryEdge", X, Z),
        struct("queryPath", Z, Y),
    ))

    # Query vertex source/sink and degree helpers.
    rules.append(rule(
        struct("queryVertexSource", X),
        struct("queryVertexInDegree", X, 0),
    ))
    rules.append(rule(
        struct("queryVertexSink", X),
        struct("queryVertexOutDegree", X, 0),
    ))
    rules.append(rule(
        struct("queryIncomingVertices", X, var("INLIST")),
        struct("queryVertex", X),
        struct("findall", var("SRC"),
               struct("queryAnyEdge", var("SRC"), X), var("INLIST")),
    ))
    rules.append(rule(
        struct("queryOutgoingVertices", X, var("OUTLIST")),
        struct("queryVertex", X),
        struct("findall", var("DST"),
               struct("queryAnyEdge", X, var("DST")), var("OUTLIST")),
    ))
    rules.append(rule(
        struct("queryVertexInDegree", X, var("D")),
        struct("queryIncomingVertices", X, var("INLIST")),
        struct("length", var("INLIST"), var("D")),
    ))
    rules.append(rule(
        struct("queryVertexOutDegree", X, var("D")),
        struct("queryOutgoingVertices", X, var("OUTLIST")),
        struct("length", var("OUTLIST"), var("D")),
    ))

    # queryAnyEdge also counts variable-length paths as adjacency, so that the
    # source/sink analysis sees the whole query chain of Listing 1.
    rules.append(rule(
        struct("queryAnyEdge", X, Y),
        struct("queryEdge", X, Y),
    ))
    rules.append(rule(
        struct("queryAnyEdge", X, Y),
        struct("queryVariableLengthPath", X, Y, var("_Lo"), var("_Up")),
    ))
    return rules


def mining_rules() -> list[Rule]:
    """The full constraint mining rule library (schema + query rules)."""
    return schema_mining_rules() + query_mining_rules()


def k_hop_schema_paths_procedural(schema_edges: list[tuple[str, str, str]] | GraphSchema,
                                  k: int) -> list[list[tuple[str, str, str]]]:
    """Procedural version of the ``schemaKHopPath`` mining rule (Algorithm 1).

    The paper provides this to contrast with the declarative rule: it is more
    code and, crucially, it cannot be injected into the inference engine
    alongside the query constraints, so it explores the full schema-path space
    instead of only the k values the query can use.  We use it as the baseline
    in the search-space reduction benchmark.

    Args:
        schema_edges: Either a list of ``(source_type, target_type, label)``
            triples or a :class:`GraphSchema`.
        k: Path length.

    Returns:
        All k-length schema paths (trail semantics, mirroring Listing 2) as
        lists of edge triples.
    """
    if isinstance(schema_edges, GraphSchema):
        edges = [(et.source, et.target, et.label) for et in schema_edges.edge_types]
    else:
        edges = list(schema_edges)
    if k < 1:
        return []

    def recurse(paths: list[list[tuple[str, str, str]]], current_k: int
                ) -> list[list[tuple[str, str, str]]]:
        if current_k == 0:
            return [p for p in paths if len(p) == k]
        if current_k == k:
            new_paths = [[e] for e in edges]
            return recurse(new_paths, current_k - 1)
        new_paths: list[list[tuple[str, str, str]]] = []
        for path in paths:
            src, dst = path[0][0], path[-1][1]
            visited = {e[0] for e in path} | {path[-1][1]}
            for edge in edges:
                # Extend at the end of the path.
                if dst == edge[0] and edge[1] not in visited - {path[0][0]}:
                    new_paths.append(path + [edge])
                # Extend at the front of the path.
                if src == edge[1] and edge[0] not in visited - {path[-1][1]}:
                    new_paths.append([edge] + path)
        # Deduplicate and keep only paths that grew this round.
        unique: list[list[tuple[str, str, str]]] = []
        seen: set[tuple[tuple[str, str, str], ...]] = set()
        target_length = k - current_k + 1
        for path in new_paths:
            key = tuple(path)
            if len(path) == target_length and key not in seen:
                seen.add(key)
                unique.append(path)
        return recurse(unique, current_k - 1)

    return recurse([], k)
