"""Constraint-based view enumeration (§IV).

The :class:`ViewEnumerator` wires together the three inputs of Fig. 4 — a
query, a graph schema, and the view template library — inside the inference
engine:

1. explicit facts are extracted from the query and schema
   (:mod:`repro.core.facts`),
2. the constraint mining rules (:mod:`repro.core.mining`) and view templates
   (:mod:`repro.core.templates`) are consulted, and
3. each template head is evaluated; every solution is converted into a
   :class:`~repro.core.templates.ViewCandidate`.

Because the mined constraints are evaluated *inside* the same resolution as
the templates, infeasible candidates (odd-length job-to-job connectors,
connectors longer than the query's hop bound, …) are pruned during the search
rather than filtered afterwards.  The :meth:`ViewEnumerator.search_space_report`
method quantifies that reduction for the §IV-A benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.facts import query_to_facts, schema_to_facts
from repro.core.mining import k_hop_schema_paths_procedural, mining_rules
from repro.core.templates import (
    AggregateTemplate,
    ViewCandidate,
    ViewTemplate,
    all_template_rules,
    connector_templates,
    summarizer_templates,
)
from repro.graph.schema import GraphSchema
from repro.inference.database import RuleDatabase
from repro.inference.engine import InferenceEngine
from repro.query.ast import GraphQuery


@dataclass
class EnumerationResult:
    """Output of one enumeration run."""

    query: GraphQuery
    candidates: list[ViewCandidate] = field(default_factory=list)
    solutions_examined: int = 0

    @property
    def connectors(self) -> list[ViewCandidate]:
        return [c for c in self.candidates if c.definition.kind == "connector"]

    @property
    def summarizers(self) -> list[ViewCandidate]:
        return [c for c in self.candidates if c.definition.kind == "summarizer"]

    def by_template(self, template: str) -> list[ViewCandidate]:
        return [c for c in self.candidates if c.template == template]

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


@dataclass
class SearchSpaceReport:
    """Comparison of constrained vs. unconstrained candidate counts (§IV-A2)."""

    constrained_candidates: int
    unconstrained_schema_paths: int
    max_k: int

    @property
    def reduction_factor(self) -> float:
        """How many times fewer candidates the constrained search considers."""
        if self.constrained_candidates == 0:
            return float("inf") if self.unconstrained_schema_paths else 1.0
        return self.unconstrained_schema_paths / self.constrained_candidates


class ViewEnumerator:
    """Enumerates candidate views for a query over a schema."""

    def __init__(self, schema: GraphSchema,
                 extra_templates: Iterable[ViewTemplate] = (),
                 max_depth: int = 20000) -> None:
        """Create an enumerator for a schema.

        Args:
            schema: Graph schema whose constraints are mined.
            extra_templates: Additional user-supplied view templates — the
                template library is "readily extensible" (§IV).
            max_depth: Resolution depth limit passed to the inference engine.
        """
        self.schema = schema
        self.templates: list[ViewTemplate] = connector_templates() + list(extra_templates)
        self.aggregate_templates: list[AggregateTemplate] = summarizer_templates()
        self.max_depth = max_depth
        self._schema_facts = schema_to_facts(schema)
        self._static_rules = mining_rules() + all_template_rules()

    # ------------------------------------------------------------------ public
    def enumerate(self, query: GraphQuery) -> EnumerationResult:
        """Enumerate candidate views for a query."""
        engine = self._build_engine(query)
        result = EnumerationResult(query=query)
        seen_signatures: set[tuple] = set()

        for template in self.templates:
            solutions = engine.query_distinct(template.goal)
            result.solutions_examined += len(solutions)
            for solution in solutions:
                candidate = template.convert(solution, query)
                if candidate is None:
                    continue
                signature = candidate.definition.signature()
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
                result.candidates.append(candidate)

        for aggregate in self.aggregate_templates:
            solutions = engine.query_distinct(aggregate.goal)
            result.solutions_examined += len(solutions)
            candidate = aggregate.converter(solutions, query)
            if candidate is None:
                continue
            signature = candidate.definition.signature()
            if signature not in seen_signatures:
                seen_signatures.add(signature)
                result.candidates.append(candidate)
        return result

    def enumerate_workload(self, queries: Iterable[GraphQuery]) -> list[EnumerationResult]:
        """Enumerate candidates for every query in a workload."""
        return [self.enumerate(query) for query in queries]

    def search_space_report(self, query: GraphQuery, max_k: int | None = None,
                            baseline: str = "walks") -> SearchSpaceReport:
        """Quantify the §IV-A2 search-space reduction for a query.

        The unconstrained baseline is the number of k-hop schema paths that a
        schema-only enumeration would consider, summed over k = 1..max_k
        (max_k defaults to the query's maximum hop bound).  With ``baseline=
        "walks"`` this is the walk count over the schema type graph — the
        space that grows at least as M^k when the schema has cycles, which is
        the paper's argument for injecting query constraints.  ``baseline=
        "procedural"`` instead uses the trail-based Algorithm 1.
        """
        if max_k is None:
            max_k = max((path.hop_bounds()[1] for path in query.match), default=8)
            max_k = max(max_k, 1)
        unconstrained = 0
        for k in range(1, max_k + 1):
            if baseline == "procedural":
                unconstrained += len(k_hop_schema_paths_procedural(self.schema, k))
            else:
                unconstrained += self.schema.count_k_hop_paths(k, mode="walk",
                                                               max_paths=1_000_000)
        constrained = len(self.enumerate(query).connectors)
        return SearchSpaceReport(
            constrained_candidates=constrained,
            unconstrained_schema_paths=unconstrained,
            max_k=max_k,
        )

    # ----------------------------------------------------------------- internal
    def _build_engine(self, query: GraphQuery) -> InferenceEngine:
        database = RuleDatabase()
        database.add_all(self._schema_facts)
        database.add_all(query_to_facts(query))
        database.add_all(self._static_rules)
        return InferenceEngine(database=database, max_depth=self.max_depth)
