"""View templates expressed as inference rules (§IV-B, Listings 3 and 5).

A *view template* is an inference rule whose head describes a family of graph
views and whose body combines explicit query/schema constraints with the
constraint mining rules.  Enumerating candidate views is simply evaluating the
template heads against the fact base — the inference engine does the search
and the injected constraints prune it.

Each template is registered with a converter that turns a unification (a
solution binding) into a :class:`~repro.views.definitions.ViewDefinition` plus
rewrite hints (which query variables the view's endpoints correspond to).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.inference.terms import Rule, Struct, rule, struct, var
from repro.query.ast import GraphQuery
from repro.views.definitions import ConnectorView, SummarizerView, ViewDefinition


@dataclass(frozen=True)
class ViewCandidate:
    """A candidate view produced by enumeration.

    Attributes:
        definition: The declarative view specification.
        template: Name of the view template that produced it.
        bindings: The template-variable bindings of the unification.
        source_variable / target_variable: Query variables that map to the
            view's endpoint vertices (used when rewriting the query).
        query_name: Name of the query the candidate was derived for.
    """

    definition: ViewDefinition
    template: str
    bindings: tuple[tuple[str, Any], ...] = ()
    source_variable: str | None = None
    target_variable: str | None = None
    query_name: str = ""

    def binding(self, name: str, default: Any = None) -> Any:
        """Look up one template-variable binding."""
        return dict(self.bindings).get(name, default)


@dataclass(frozen=True)
class ViewTemplate:
    """A named template: goal to evaluate + converter from solutions to candidates."""

    name: str
    goal: Struct
    rules: tuple[Rule, ...]
    converter: Callable[[Mapping[str, Any], GraphQuery], ViewCandidate | None]

    def convert(self, solution: Mapping[str, Any], query: GraphQuery) -> ViewCandidate | None:
        """Convert one inference solution into a view candidate (or None to skip)."""
        return self.converter(solution, query)


# --------------------------------------------------------------------- helpers
def _candidate_name(prefix: str, *parts: Any) -> str:
    rendered = "_".join(str(p).lower() for p in parts if p is not None)
    return f"{prefix}_{rendered}" if rendered else prefix


def _max_hops_for_query(query: GraphQuery) -> int:
    """Upper bound on hops implied by the query (for variable-length templates)."""
    return max((path.hop_bounds()[1] for path in query.match), default=8)


def _endpoints_projected(solution: Mapping[str, Any], query: GraphQuery) -> bool:
    """Whether both connector endpoints are projected out of the MATCH clause.

    §IV-B enumerates connector instantiations "for query vertices q_j1 and
    q_j2 (the only vertices projected out of the MATCH clause)": connectors
    whose endpoints are not used downstream would not help rewriting, so they
    are pruned here.  Queries without a RETURN clause keep every candidate.
    """
    projected = query.projected_variables()
    if not projected:
        return True
    return solution.get("X") in projected and solution.get("Y") in projected


# ------------------------------------------------------------------ connectors
def _k_hop_connector_rules() -> tuple[Rule, ...]:
    X, Y = var("X"), var("Y")
    XT, YT, K = var("XTYPE"), var("YTYPE"), var("K")
    k_hop = rule(
        struct("kHopConnector", X, Y, XT, YT, K),
        # query constraints
        struct("queryVertexType", X, XT),
        struct("queryVertexType", Y, YT),
        struct("queryKHopPath", X, Y, K),
        # schema constraints
        struct("schemaKHopPath", XT, YT, K),
    )
    same_type = rule(
        struct("kHopConnectorSameVertexType", X, Y, var("VTYPE"), K),
        struct("kHopConnector", X, Y, var("VTYPE"), var("VTYPE"), K),
    )
    return (k_hop, same_type)


def _convert_k_hop_connector(solution: Mapping[str, Any],
                             query: GraphQuery) -> ViewCandidate | None:
    if not _endpoints_projected(solution, query):
        return None
    k = int(solution["K"])
    source_type = solution["XTYPE"]
    target_type = solution["YTYPE"]
    definition = ConnectorView(
        name=_candidate_name("connector", source_type, "to", target_type, f"{k}hop"),
        connector_kind="k_hop_same_vertex_type" if source_type == target_type else "k_hop",
        source_type=source_type,
        target_type=target_type,
        k=k,
    )
    return ViewCandidate(
        definition=definition,
        template="kHopConnector",
        bindings=tuple(sorted(solution.items())),
        source_variable=solution.get("X"),
        target_variable=solution.get("Y"),
        query_name=query.name,
    )


def _convert_k_hop_same_type(solution: Mapping[str, Any],
                             query: GraphQuery) -> ViewCandidate | None:
    if not _endpoints_projected(solution, query):
        return None
    k = int(solution["K"])
    vertex_type = solution["VTYPE"]
    definition = ConnectorView(
        name=_candidate_name("connector", vertex_type, "to", vertex_type, f"{k}hop"),
        connector_kind="k_hop_same_vertex_type",
        source_type=vertex_type,
        target_type=vertex_type,
        k=k,
    )
    return ViewCandidate(
        definition=definition,
        template="kHopConnectorSameVertexType",
        bindings=tuple(sorted(solution.items())),
        source_variable=solution.get("X"),
        target_variable=solution.get("Y"),
        query_name=query.name,
    )


def _connector_same_vertex_type_rules() -> tuple[Rule, ...]:
    X, Y, VT = var("X"), var("Y"), var("VTYPE")
    return (
        rule(
            struct("connectorSameVertexType", X, Y, VT),
            # query constraints
            struct("queryVertexType", X, VT),
            struct("queryVertexType", Y, VT),
            struct("\\==", X, Y),
            struct("queryPath", X, Y),
            # schema constraints
            struct("schemaPath", VT, VT),
        ),
    )


def _convert_same_vertex_type(solution: Mapping[str, Any],
                              query: GraphQuery) -> ViewCandidate | None:
    if not _endpoints_projected(solution, query):
        return None
    vertex_type = solution["VTYPE"]
    definition = ConnectorView(
        name=_candidate_name("connector", vertex_type, "paths"),
        connector_kind="same_vertex_type",
        source_type=vertex_type,
        target_type=vertex_type,
        max_hops=_max_hops_for_query(query),
    )
    return ViewCandidate(
        definition=definition,
        template="connectorSameVertexType",
        bindings=tuple(sorted(solution.items())),
        source_variable=solution.get("X"),
        target_variable=solution.get("Y"),
        query_name=query.name,
    )


def _source_to_sink_rules() -> tuple[Rule, ...]:
    X, Y = var("X"), var("Y")
    feasible_both = rule(
        struct("schemaFeasiblePath", X, Y),
        struct("queryVertexType", X, var("XT")),
        struct("queryVertexType", Y, var("YT")),
        struct("schemaPath", var("XT"), var("YT")),
    )
    feasible_untyped_source = rule(
        struct("schemaFeasiblePath", X, Y),
        struct("not", struct("queryVertexType", X, var("_T1"))),
    )
    feasible_untyped_target = rule(
        struct("schemaFeasiblePath", X, Y),
        struct("not", struct("queryVertexType", Y, var("_T2"))),
    )
    connector = rule(
        struct("sourceToSinkConnector", X, Y),
        # query constraints
        struct("queryVertexSource", X),
        struct("queryVertexSink", Y),
        struct("queryPath", X, Y),
        # schema constraints
        struct("schemaFeasiblePath", X, Y),
    )
    return (feasible_both, feasible_untyped_source, feasible_untyped_target, connector)


def _convert_source_to_sink(solution: Mapping[str, Any],
                            query: GraphQuery) -> ViewCandidate | None:
    source_variable = solution.get("X")
    target_variable = solution.get("Y")
    definition = ConnectorView(
        name=_candidate_name("connector", "source_to_sink",
                             query.variable_label(source_variable or ""),
                             query.variable_label(target_variable or "")),
        connector_kind="source_to_sink",
        source_type=query.variable_label(source_variable or ""),
        target_type=query.variable_label(target_variable or ""),
        max_hops=_max_hops_for_query(query),
    )
    return ViewCandidate(
        definition=definition,
        template="sourceToSinkConnector",
        bindings=tuple(sorted(solution.items())),
        source_variable=source_variable,
        target_variable=target_variable,
        query_name=query.name,
    )


# ----------------------------------------------------------------- summarizers
def _summarizer_rules() -> tuple[Rule, ...]:
    """Summarizer templates (Listing 5, adapted to grounded enumeration).

    ``summarizerKeepVertexType(T)`` holds for every vertex type the query
    references; ``summarizerRemoveVertexType(T)`` for every schema vertex type
    the query does *not* reference (those can be filtered out without
    affecting the query); similarly for edge labels.
    """
    T, L = var("T"), var("L")
    return (
        rule(
            struct("summarizerKeepVertexType", T),
            struct("queryVertexType", var("_V"), T),
        ),
        rule(
            struct("summarizerRemoveVertexType", T),
            struct("schemaVertex", T),
            struct("not", struct("queryVertexType", var("_V2"), T)),
        ),
        rule(
            struct("summarizerKeepEdgeLabel", L),
            struct("queryEdgeType", var("_S"), var("_D"), L),
        ),
        rule(
            struct("summarizerRemoveEdgeLabel", L),
            struct("schemaEdge", var("_S2"), var("_D2"), L),
            struct("not", struct("queryEdgeType", var("_S3"), var("_D3"), L)),
        ),
    )


def _convert_keep_vertex_types(solutions: list[Mapping[str, Any]],
                               query: GraphQuery) -> ViewCandidate | None:
    """Aggregate converter: all kept vertex types become one inclusion summarizer."""
    types = sorted({solution["T"] for solution in solutions})
    if not types:
        return None
    definition = SummarizerView(
        name=_candidate_name("summarizer_keep", *types),
        summarizer_kind="vertex_inclusion",
        vertex_types=tuple(types),
    )
    return ViewCandidate(
        definition=definition,
        template="summarizerKeepVertexType",
        bindings=tuple(("T", t) for t in types),
        query_name=query.name,
    )


def _convert_remove_edge_labels(solutions: list[Mapping[str, Any]],
                                query: GraphQuery) -> ViewCandidate | None:
    labels = sorted({solution["L"] for solution in solutions})
    if not labels:
        return None
    definition = SummarizerView(
        name=_candidate_name("summarizer_drop_edges", *labels),
        summarizer_kind="edge_removal",
        edge_labels=tuple(labels),
    )
    return ViewCandidate(
        definition=definition,
        template="summarizerRemoveEdgeLabel",
        bindings=tuple(("L", label) for label in labels),
        query_name=query.name,
    )


# --------------------------------------------------------------------- library
@dataclass(frozen=True)
class AggregateTemplate:
    """A template whose solutions are combined into a single candidate."""

    name: str
    goal: Struct
    rules: tuple[Rule, ...]
    converter: Callable[[list[Mapping[str, Any]], GraphQuery], ViewCandidate | None]


def connector_templates() -> list[ViewTemplate]:
    """Per-solution connector templates (each solution is one candidate)."""
    k_hop_rules = _k_hop_connector_rules()
    return [
        ViewTemplate(
            name="kHopConnectorSameVertexType",
            goal=struct("kHopConnectorSameVertexType",
                        var("X"), var("Y"), var("VTYPE"), var("K")),
            rules=k_hop_rules,
            converter=_convert_k_hop_same_type,
        ),
        ViewTemplate(
            name="kHopConnector",
            goal=struct("kHopConnector",
                        var("X"), var("Y"), var("XTYPE"), var("YTYPE"), var("K")),
            rules=k_hop_rules,
            converter=_convert_k_hop_connector,
        ),
        ViewTemplate(
            name="connectorSameVertexType",
            goal=struct("connectorSameVertexType", var("X"), var("Y"), var("VTYPE")),
            rules=_connector_same_vertex_type_rules(),
            converter=_convert_same_vertex_type,
        ),
        ViewTemplate(
            name="sourceToSinkConnector",
            goal=struct("sourceToSinkConnector", var("X"), var("Y")),
            rules=_source_to_sink_rules(),
            converter=_convert_source_to_sink,
        ),
    ]


def summarizer_templates() -> list[AggregateTemplate]:
    """Aggregate summarizer templates (all solutions fold into one candidate)."""
    rules = _summarizer_rules()
    return [
        AggregateTemplate(
            name="summarizerKeepVertexType",
            goal=struct("summarizerKeepVertexType", var("T")),
            rules=rules,
            converter=_convert_keep_vertex_types,
        ),
        AggregateTemplate(
            name="summarizerRemoveEdgeLabel",
            goal=struct("summarizerRemoveEdgeLabel", var("L")),
            rules=rules,
            converter=_convert_remove_edge_labels,
        ),
    ]


def all_template_rules() -> list[Rule]:
    """Every rule contributed by the template library (for engine setup)."""
    rules: list[Rule] = []
    seen: set[str] = set()
    for template in connector_templates():
        if template.name not in seen:
            rules.extend(template.rules)
            seen.add(template.name)
    rules.extend(_summarizer_rules())
    # The two k-hop templates share their rule tuple; deduplicate identical rules.
    unique: list[Rule] = []
    seen_repr: set[str] = set()
    for item in rules:
        key = str(item)
        if key not in seen_repr:
            seen_repr.add(key)
            unique.append(item)
    return unique
