"""View-based query rewriting (§V-C).

Given a query and a materialized connector view, the rewriter replaces the
path fragment between the view's endpoint variables with a single (possibly
variable-length) edge pattern over the connector's output label, dividing the
hop bounds by the connector's k.  This is exactly the Listing 1 → Listing 4
transformation: the job blast radius query over the raw graph becomes a query
over the job-to-job 2-hop connector with (roughly) half the hops.

The rewriter is conservative: a rewrite is produced only when the replaced
fragment's interior variables are not referenced anywhere else in the query
(WHERE, RETURN, or other MATCH paths), so the rewritten query is equivalent to
the original by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.templates import ViewCandidate
from repro.errors import ViewError
from repro.graph.schema import GraphSchema
from repro.query.ast import (
    EdgePattern,
    GraphQuery,
    NodePattern,
    PathPattern,
)
from repro.views.definitions import ConnectorView, SummarizerView


@dataclass(frozen=True)
class RewrittenQuery:
    """The result of rewriting a query against one view."""

    original: GraphQuery
    rewritten: GraphQuery
    candidate: ViewCandidate
    hop_bounds: tuple[int, int]

    @property
    def view_label(self) -> str:
        definition = self.candidate.definition
        if isinstance(definition, ConnectorView):
            return definition.output_label
        return definition.name


@dataclass
class _Chain:
    """A linearized MATCH clause: nodes[i] -(edges[i])-> nodes[i+1]."""

    nodes: list[NodePattern] = field(default_factory=list)
    edges: list[EdgePattern] = field(default_factory=list)

    def variable_index(self, variable: str) -> int | None:
        for index, node in enumerate(self.nodes):
            if node.variable == variable:
                return index
        return None


def _linearize(query: GraphQuery) -> _Chain | None:
    """Merge the query's path patterns into one linear chain if possible.

    Paths are stitched together on shared endpoint variables (the last node of
    one path being the first node of another), which covers the workload
    queries of Table IV.  Returns None for non-linear patterns.
    """
    fragments: list[PathPattern] = list(query.match)
    if not fragments:
        return None
    chain = _Chain(nodes=list(fragments[0].nodes), edges=list(fragments[0].edges))
    remaining = fragments[1:]
    progress = True
    while remaining and progress:
        progress = False
        for index, fragment in enumerate(remaining):
            if fragment.nodes[0].variable == chain.nodes[-1].variable:
                chain.nodes.extend(fragment.nodes[1:])
                chain.edges.extend(fragment.edges)
                remaining.pop(index)
                progress = True
                break
            if fragment.nodes[-1].variable == chain.nodes[0].variable:
                chain.nodes = list(fragment.nodes[:-1]) + chain.nodes
                chain.edges = list(fragment.edges) + chain.edges
                remaining.pop(index)
                progress = True
                break
    if remaining:
        return None
    # Reject chains whose edges point "backwards": rewriting only handles
    # uniformly forward chains (all the workload queries are of this form).
    if any(edge.direction == "in" for edge in chain.edges):
        return None
    return chain


def _referenced_variables(query: GraphQuery) -> set[str]:
    """Variables referenced outside the MATCH clause (WHERE + RETURN)."""
    referenced: set[str] = set()
    for condition in query.where:
        referenced.add(condition.ref.variable)
    for item in query.returns:
        if item.ref.variable != "*":
            referenced.add(item.ref.variable)
    return referenced


class QueryRewriter:
    """Rewrites queries over connector and summarizer views.

    Args:
        schema: Optional graph schema.  With a schema, the rewriter checks that
            every schema-feasible raw path length spanned by the replaced
            fragment is a multiple of the connector's k (so no results are
            lost); without one, it falls back to a conservative divisibility
            check on the hop bounds.
    """

    def __init__(self, schema: GraphSchema | None = None) -> None:
        self.schema = schema

    def rewrite(self, query: GraphQuery, candidate: ViewCandidate) -> RewrittenQuery | None:
        """Rewrite ``query`` using ``candidate``; returns None when not applicable."""
        definition = candidate.definition
        if isinstance(definition, ConnectorView):
            return self._rewrite_connector(query, candidate, definition)
        if isinstance(definition, SummarizerView):
            return self._rewrite_summarizer(query, candidate, definition)
        raise ViewError(f"cannot rewrite with view of type {type(definition)!r}")

    # ------------------------------------------------------------- connectors
    def _rewrite_connector(self, query: GraphQuery, candidate: ViewCandidate,
                           view: ConnectorView) -> RewrittenQuery | None:
        if view.k is None:
            # Only k-hop connectors support automatic equivalence-preserving
            # rewrites: with a known k, "h raw hops" maps exactly to "h / k view
            # hops".  Variable-length (same-vertex-type) and source-to-sink
            # connectors contract paths of unknown length, so a hop-bounded
            # query over them would not be equivalent; they remain available
            # for manual use (and the paper's experiments likewise rewrite
            # over fixed 2-hop connectors only).
            return None
        if candidate.source_variable is None or candidate.target_variable is None:
            return None
        chain = _linearize(query)
        if chain is None:
            return None
        start = chain.variable_index(candidate.source_variable)
        end = chain.variable_index(candidate.target_variable)
        if start is None or end is None or start >= end:
            return None

        interior = {node.variable for node in chain.nodes[start + 1:end]}
        if interior & _referenced_variables(query):
            return None  # the fragment's interior is observable; cannot contract it

        min_hops = sum(edge.min_hops for edge in chain.edges[start:end])
        max_hops = sum(edge.max_hops for edge in chain.edges[start:end])
        k = view.k
        assert k is not None
        if max_hops < k:
            return None  # the view contracts more hops than the query can span
        bounds = self._covering_bounds(view, min_hops, max_hops, k)
        if bounds is None:
            return None
        new_min, new_max = bounds

        connector_edge = EdgePattern(
            label=view.output_label,
            direction="out",
            min_hops=new_min,
            max_hops=new_max,
        )
        new_nodes = chain.nodes[: start + 1] + chain.nodes[end:]
        new_edges = chain.edges[:start] + [connector_edge] + chain.edges[end:]
        rewritten_match = (PathPattern(nodes=tuple(new_nodes), edges=tuple(new_edges)),)

        rewritten = GraphQuery(
            match=rewritten_match,
            where=query.where,
            returns=query.returns,
            distinct=query.distinct,
            limit=query.limit,
            name=f"{query.name}@{view.name}" if query.name else f"rewritten@{view.name}",
        )
        return RewrittenQuery(original=query, rewritten=rewritten, candidate=candidate,
                              hop_bounds=(new_min, new_max))

    def _covering_bounds(self, view: ConnectorView, min_hops: int, max_hops: int,
                         k: int) -> tuple[int, int] | None:
        """View-hop bounds that cover every feasible raw path length, or None.

        A k-hop connector rewrite is equivalence-preserving only if every raw
        path length the query could match (between the connector's endpoint
        types, within [min_hops, max_hops]) is a multiple of k — otherwise
        results reached via non-multiple lengths would be lost.  The schema
        tells us which lengths are feasible (e.g. only even lengths between
        two jobs in the lineage schema), exactly the implicit constraint
        §IV-A2 mines.
        """
        low = max(min_hops, 1)
        if self.schema is not None and view.source_type and (view.target_type or
                                                             view.source_type):
            target_type = view.target_type or view.source_type
            feasible = [
                length for length in range(low, max_hops + 1)
                if self.schema.has_k_hop_path(view.source_type, target_type, length)
            ]
            if not feasible:
                return None
            if any(length % k for length in feasible):
                return None
            return max(1, min(feasible) // k), max(feasible) // k
        # Without a schema we cannot rule out intermediate lengths, so only a
        # fragment whose every possible length is trivially a multiple of k is
        # rewritable: either k = 1, or the fragment has a single fixed length.
        if k == 1:
            return max(1, low), max_hops
        if low == max_hops and low % k == 0:
            return low // k, low // k
        return None

    # ------------------------------------------------------------ summarizers
    def _rewrite_summarizer(self, query: GraphQuery, candidate: ViewCandidate,
                            view: SummarizerView) -> RewrittenQuery | None:
        """A summarizer rewrite keeps the query text but retargets it to the view.

        The rewrite is valid when every vertex type the query references
        survives the summarizer (inclusion keeps them / removal does not drop
        them), and — for edge filters — every edge label referenced survives.
        """
        used_types = {
            node.label for node in query.node_patterns() if node.label is not None
        }
        used_labels = {
            edge.label for edge in query.edge_patterns() if edge.label is not None
        }
        kind = view.summarizer_kind
        if kind == "vertex_inclusion" and not used_types <= set(view.vertex_types):
            return None
        if kind == "vertex_removal" and used_types & set(view.vertex_types):
            return None
        if kind == "edge_inclusion" and not used_labels <= set(view.edge_labels):
            return None
        if kind == "edge_removal" and used_labels & set(view.edge_labels):
            return None
        if kind.endswith("aggregator"):
            return None  # aggregator rewrites change query semantics; not automated
        rewritten = query.with_name(
            f"{query.name}@{view.name}" if query.name else f"rewritten@{view.name}")
        min_hops, max_hops = (
            min((path.hop_bounds()[0] for path in query.match), default=0),
            max((path.hop_bounds()[1] for path in query.match), default=0),
        )
        return RewrittenQuery(original=query, rewritten=rewritten, candidate=candidate,
                              hop_bounds=(min_hops, max_hops))

    # ----------------------------------------------------------------- helpers
    def applicable(self, query: GraphQuery, candidates: Iterable[ViewCandidate]
                   ) -> list[RewrittenQuery]:
        """All candidates that produce a valid rewrite for ``query``."""
        rewrites: list[RewrittenQuery] = []
        for candidate in candidates:
            rewrite = self.rewrite(query, candidate)
            if rewrite is not None:
                rewrites.append(rewrite)
        return rewrites
