"""Explicit constraint extraction (§IV-A1).

The first step of constraint-based view enumeration turns the query's MATCH
clause and the graph schema into Prolog facts:

* From the query: ``queryVertex/1``, ``queryVertexType/2``, ``queryEdge/2``,
  ``queryEdgeType/3``, and ``queryVariableLengthPath/4`` facts — exactly the
  facts shown in §IV-A1 for the job blast radius query of Listing 1.
* From the schema: ``schemaVertex/1`` and ``schemaEdge/3`` facts.

These facts feed the constraint mining rules (:mod:`repro.core.mining`) and
the view templates (:mod:`repro.core.templates`) inside the inference engine.
"""

from __future__ import annotations

from repro.graph.schema import GraphSchema
from repro.inference.terms import Rule, fact
from repro.query.ast import GraphQuery


def query_to_facts(query: GraphQuery) -> list[Rule]:
    """Extract explicit constraint facts from a query's graph pattern.

    Every named vertex and edge of the MATCH clause becomes a fact, along with
    its declared type and any variable-length path bounds, mirroring §IV-A1.
    """
    facts: list[Rule] = []
    seen_vertices: set[str] = set()

    for path in query.match:
        for node in path.nodes:
            if node.variable not in seen_vertices:
                seen_vertices.add(node.variable)
                facts.append(fact("queryVertex", node.variable))
                if node.label is not None:
                    facts.append(fact("queryVertexType", node.variable, node.label))
        for edge, source, target in zip(path.edges, path.nodes, path.nodes[1:]):
            source_var, target_var = source.variable, target.variable
            if edge.direction == "in":
                source_var, target_var = target_var, source_var
            if edge.is_variable_length:
                facts.append(fact(
                    "queryVariableLengthPath", source_var, target_var,
                    edge.min_hops, edge.max_hops,
                ))
            else:
                facts.append(fact("queryEdge", source_var, target_var))
                if edge.label is not None:
                    facts.append(fact("queryEdgeType", source_var, target_var, edge.label))
    return facts


def schema_to_facts(schema: GraphSchema) -> list[Rule]:
    """Extract explicit constraint facts from a graph schema (§IV-A1)."""
    facts: list[Rule] = []
    for vertex_type in schema.vertex_types:
        facts.append(fact("schemaVertex", vertex_type))
    for edge_type in schema.edge_types:
        facts.append(fact("schemaEdge", edge_type.source, edge_type.target, edge_type.label))
    return facts


def describe_facts(rules: list[Rule]) -> list[str]:
    """Render facts as Prolog-ish text lines (used in reports and examples)."""
    return [str(rule) for rule in rules]
