"""Fold per-module benchmark records into one perf-trajectory file.

Every benchmark session writes ``BENCH_<module>.json`` files (see
``benchmarks/conftest.py``): flat lists of ``{"benchmark", "metric", "value",
"timestamp"}`` entries, overwritten per run.  Individually those files answer
"what did this module measure last time"; what the roadmap asks for is the
*history-shaped* view — one machine-readable artifact a future re-anchor can
read to see where the perf story stands without re-running anything.

:func:`fold_trajectory` produces that artifact, ``BENCH_TRAJECTORY.json``::

    {
      "generated_at": <fold time, epoch seconds>,
      "modules": {"<module>": [entries...], ...},
      "latest": {"<module>": {"<benchmark>": {"<metric>": {"value": ...,
                                                           "timestamp": ...}}}}
    }

``modules`` preserves every record verbatim (grouped by module); ``latest``
keeps only the newest value per (module, benchmark, metric) — the quick-read
summary.  The fold is idempotent and purely derived: it re-reads whatever
``BENCH_*.json`` files exist (skipping its own output) and rewrites the
trajectory, so modules benchmarked in *earlier* sessions keep contributing
as long as their files remain in the output directory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

#: Output filename, alongside the per-module files it folds.
TRAJECTORY_FILENAME = "BENCH_TRAJECTORY.json"


def _module_of(path: Path) -> str:
    return path.stem[len("BENCH_"):]


def collect_records(out_dir: str | Path) -> dict[str, list[dict]]:
    """All per-module benchmark records in ``out_dir``, keyed by module.

    Unreadable or malformed files are skipped (a torn write from a crashed
    run must not poison the fold), as is the trajectory file itself.
    """
    out_path = Path(out_dir)
    records: dict[str, list[dict]] = {}
    if not out_path.is_dir():
        return records
    for path in sorted(out_path.glob("BENCH_*.json")):
        if path.name == TRAJECTORY_FILENAME:
            continue
        try:
            entries = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(entries, list):
            continue
        clean = [entry for entry in entries
                 if isinstance(entry, dict)
                 and "benchmark" in entry and "metric" in entry]
        if clean:
            records[_module_of(path)] = clean
    return records


def latest_values(records: dict[str, list[dict]]) -> dict:
    """Newest value per (module, benchmark, metric), by record timestamp."""
    latest: dict = {}
    for module, entries in records.items():
        per_module = latest.setdefault(module, {})
        for entry in entries:
            per_benchmark = per_module.setdefault(str(entry["benchmark"]), {})
            timestamp = float(entry.get("timestamp", 0.0))
            current = per_benchmark.get(str(entry["metric"]))
            if current is None or timestamp >= current["timestamp"]:
                per_benchmark[str(entry["metric"])] = {
                    "value": entry.get("value"),
                    "timestamp": timestamp,
                }
    return latest


def fold_trajectory(out_dir: str | Path) -> Path | None:
    """Fold every ``BENCH_*.json`` in ``out_dir`` into the trajectory file.

    Returns the path written, or None when there was nothing to fold (the
    directory is absent or holds no per-module records) — in that case an
    existing trajectory file is left untouched.
    """
    records = collect_records(out_dir)
    if not records:
        return None
    payload = {
        "generated_at": time.time(),
        "modules": records,
        "latest": latest_values(records),
    }
    target = Path(out_dir) / TRAJECTORY_FILENAME
    target.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return target
