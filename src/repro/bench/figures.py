"""Experiment harness: one function per table/figure of the paper's evaluation.

Each function regenerates the data behind a table or figure of §VII (at a
reduced, laptop-friendly scale) and returns plain rows/series that the
benchmarks assert on and ``examples/run_experiments.py`` prints.  See
DESIGN.md §3 for the experiment index and EXPERIMENTS.md for paper-vs-measured
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.enumerator import ViewEnumerator
from repro.core.estimator import ViewSizeEstimator, erdos_renyi_estimate
from repro.core.kaskade import Kaskade
from repro.datasets.registry import dataset, evaluation_datasets
from repro.graph.io import edge_prefix
from repro.graph.schema import provenance_schema
from repro.graph.statistics import degree_ccdf, fit_power_law
from repro.graph.transform import induced_subgraph_by_vertex_types
from repro.query.parser import parse_query
from repro.views.catalog import ViewCatalog
from repro.views.definitions import ConnectorView
from repro.workloads.queries import workload_for_dataset
from repro.workloads.runner import prepare_dataset, run_workload

Row = dict[str, Any]

#: The blast radius query (Listing 1's MATCH clause) used by several experiments.
BLAST_RADIUS_CYPHER = (
    "MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File), "
    "(q_f1:File)-[r*0..8]->(q_f2:File), "
    "(q_f2:File)-[:IS_READ_BY]->(q_j2:Job) "
    "RETURN q_j1 AS A, q_j2 AS B"
)


# --------------------------------------------------------------------- tables
def table3_datasets(scale: str = "small") -> list[Row]:
    """Table III: the evaluation datasets and their sizes (scaled down)."""
    rows: list[Row] = []
    raw_prov = dataset("prov", scale).build()
    summarized_prov = induced_subgraph_by_vertex_types(raw_prov, ["Job", "File"])
    rows.append({"short_name": "prov (raw)", "type": "Data lineage",
                 "vertices": raw_prov.num_vertices, "edges": raw_prov.num_edges})
    rows.append({"short_name": "prov (summarized)", "type": "Data lineage",
                 "vertices": summarized_prov.num_vertices,
                 "edges": summarized_prov.num_edges})
    for name, kind in (("dblp", "Publications"), ("soc-livejournal", "Social network"),
                       ("roadnet-usa", "Road network")):
        graph = dataset(name, scale).build()
        rows.append({"short_name": name, "type": kind,
                     "vertices": graph.num_vertices, "edges": graph.num_edges})
    return rows


def table4_workload() -> list[Row]:
    """Table IV: the query workload (operation and result kind per query)."""
    return [
        {"query": q.query_id, "name": q.name, "operation": q.operation,
         "result": q.result_kind}
        for q in workload_for_dataset("prov")
    ]


# -------------------------------------------------------------------- figure 5
@dataclass
class EstimationPoint:
    """One point of a Fig. 5 series: estimates and ground truth at a graph prefix."""

    dataset: str
    graph_edges: int
    estimate_alpha50: float
    estimate_alpha95: float
    erdos_renyi: float
    actual_connector_edges: int


def figure5_estimation(scale: str = "tiny",
                       prefixes: Sequence[int] = (500, 1000, 2000, 4000),
                       datasets: Iterable[str] = ("prov", "dblp", "roadnet-usa",
                                                  "soc-livejournal"),
                       max_paths: int | None = 500_000) -> list[EstimationPoint]:
    """Fig. 5: estimated vs actual 2-hop connector sizes over graph prefixes.

    For each dataset and edge-prefix size n, materializes the 2-hop connector
    over the first n edges and compares its true edge count against the Eq. 2/3
    estimators at α = 50 and α = 95 (plus the Eq. 1 Erdős–Rényi baseline).
    """
    points: list[EstimationPoint] = []
    for name in datasets:
        spec = dataset(name, scale)
        graph = spec.build()
        if spec.heterogeneous:
            keep = ["Job", "File"] if name.startswith("prov") else [
                "Author", "Article", "InProc"]
            graph = induced_subgraph_by_vertex_types(graph, keep)
        view = ConnectorView(
            name=f"{name}_2hop", connector_kind="k_hop_same_vertex_type",
            source_type=spec.connector_vertex_type,
            target_type=spec.connector_vertex_type, k=2)
        seen_prefix_sizes: set[int] = set()
        for prefix_size in prefixes:
            prefix = edge_prefix(graph, prefix_size)
            if prefix.num_edges == 0 or prefix.num_edges in seen_prefix_sizes:
                continue  # prefix saturated at the full graph; skip duplicates
            seen_prefix_sizes.add(prefix.num_edges)
            from repro.views.connectors import count_connector_edges
            actual = count_connector_edges(prefix, view, max_paths=max_paths)
            estimator50 = ViewSizeEstimator.for_graph(prefix, alpha=50)
            estimator95 = ViewSizeEstimator.for_graph(prefix, alpha=95)
            points.append(EstimationPoint(
                dataset=name,
                graph_edges=prefix.num_edges,
                estimate_alpha50=float(estimator50.estimate(view).edges),
                estimate_alpha95=float(estimator95.estimate(view).edges),
                erdos_renyi=erdos_renyi_estimate(prefix.num_vertices, prefix.num_edges, 2),
                actual_connector_edges=actual,
            ))
    return points


# -------------------------------------------------------------------- figure 6
def figure6_size_reduction(scale: str = "small") -> list[Row]:
    """Fig. 6: effective graph size for raw vs summarizer (filter) vs connector.

    For the two heterogeneous datasets, reports vertices and edges of the raw
    graph, the schema-level summarizer output, and the 2-hop connector built
    on top of the summarized graph.
    """
    rows: list[Row] = []
    configs = [
        ("prov", ["Job", "File"], "Job"),
        ("dblp", ["Author", "Article", "InProc"], "Author"),
    ]
    for name, keep_types, connector_type in configs:
        raw = dataset(name, scale).build()
        filtered = induced_subgraph_by_vertex_types(raw, keep_types)
        catalog = ViewCatalog()
        connector_view = catalog.materialize(filtered, ConnectorView(
            name=f"{name}_2hop", connector_kind="k_hop_same_vertex_type",
            source_type=connector_type, target_type=connector_type, k=2))
        for stage, graph in (("raw", raw), ("filter", filtered),
                             ("connector", connector_view.graph)):
            rows.append({"dataset": name, "stage": stage,
                         "vertices": graph.num_vertices, "edges": graph.num_edges})
    return rows


# -------------------------------------------------------------------- figure 7
def figure7_runtimes(scale: str = "tiny", repetitions: int = 1,
                     query_ids: Sequence[str] | None = None,
                     datasets: Iterable[str] = ("prov", "dblp", "roadnet-usa",
                                                "soc-livejournal")) -> list[Row]:
    """Fig. 7: total query runtimes over the base graph vs the 2-hop connector."""
    rows: list[Row] = []
    for name in datasets:
        prepared = prepare_dataset(dataset(name, scale))
        result = run_workload(prepared, query_ids=query_ids, repetitions=repetitions)
        by_query: dict[str, dict[str, float]] = {}
        for record in result.runtimes:
            by_query.setdefault(record.query_id, {})[record.mode] = record.seconds
        for query_id, modes in sorted(by_query.items()):
            base_mode = prepared.base_mode
            base_seconds = modes.get(base_mode, 0.0)
            connector_seconds = modes.get("connector", 0.0)
            rows.append({
                "dataset": name,
                "query": query_id,
                "base_mode": base_mode,
                "base_seconds": base_seconds,
                "connector_seconds": connector_seconds,
                "speedup": (base_seconds / connector_seconds
                            if connector_seconds > 0 else None),
            })
    return rows


# -------------------------------------------------------------------- figure 8
def figure8_degree_ccdf(scale: str = "small") -> dict[str, dict[str, Any]]:
    """Fig. 8: degree CCDF (log-log) and power-law fit per dataset.

    The paper plots the degree distribution of all vertices; we use total
    (in + out) degree, which is what makes the preferential-attachment hubs of
    the social network visible.
    """
    output: dict[str, dict[str, Any]] = {}
    for spec in evaluation_datasets(scale):
        graph = spec.build()
        ccdf = degree_ccdf(graph, direction="total")
        exponent, r_squared = fit_power_law(ccdf)
        output[spec.name] = {
            "ccdf": ccdf,
            "power_law_exponent": exponent,
            "r_squared": r_squared,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        }
    return output


# ------------------------------------------------------- §IV-A2 pruning study
def enumeration_pruning(max_ks: Sequence[int] = (2, 4, 6, 8, 10)) -> list[Row]:
    """§IV-A2: constrained vs unconstrained view-enumeration search space.

    Uses the full provenance schema (which contains a task-to-task cycle, so
    unconstrained schema-path enumeration grows quickly with k) and the blast
    radius query.
    """
    schema = provenance_schema(include_tasks=True)
    enumerator = ViewEnumerator(schema)
    query = parse_query(BLAST_RADIUS_CYPHER, name="blast-radius")
    rows: list[Row] = []
    for max_k in max_ks:
        report = enumerator.search_space_report(query, max_k=max_k)
        rows.append({
            "max_k": max_k,
            "constrained_candidates": report.constrained_candidates,
            "unconstrained_schema_paths": report.unconstrained_schema_paths,
            "reduction_factor": report.reduction_factor,
        })
    return rows


# ------------------------------------------------------------ §V-B selection
def selection_sweep(scale: str = "tiny",
                    budget_fractions: Sequence[float] = (0.5, 1.0, 4.0, 8.0)) -> list[Row]:
    """§V-B: which views the knapsack selects as the space budget grows.

    Budgets are expressed as fractions of the summarized graph's edge count;
    the row reports how many views were selected and whether the 2-hop
    connector made the cut.
    """
    spec = dataset("prov-summarized", scale)
    graph = spec.build()
    kaskade = Kaskade(graph)
    query = kaskade.parse(BLAST_RADIUS_CYPHER, name="Q1")
    rows: list[Row] = []
    for fraction in budget_fractions:
        budget = max(1.0, fraction * graph.num_edges)
        report = kaskade.select_views([query], budget_edges=budget, materialize=False)
        names = [a.candidate.definition.name for a in report.selection.selected]
        rows.append({
            "budget_fraction": fraction,
            "budget_edges": budget,
            "selected_views": len(names),
            "includes_2hop_connector": any("2hop" in name for name in names),
            "total_estimated_weight": report.selection.total_weight,
        })
    return rows


# ---------------------------------------------------- Listing 1 -> Listing 4
def listing4_rewrite(scale: str = "tiny") -> Row:
    """The Listing 1 → Listing 4 rewrite, end to end, with result equivalence."""
    spec = dataset("prov-summarized", scale)
    graph = spec.build()
    kaskade = Kaskade(graph)
    query = kaskade.parse(BLAST_RADIUS_CYPHER, name="Q1")
    kaskade.select_views([query], budget_edges=10 * graph.num_edges)
    raw = kaskade.execute(query, use_views=False)
    optimized = kaskade.execute(query)
    raw_pairs = {(row["A"], row["B"]) for row in raw.result.rows}
    optimized_pairs = {(row["A"], row["B"]) for row in optimized.result.rows}
    return {
        "rewritten_query": str(optimized.rewrite.rewritten) if optimized.rewrite else None,
        "used_view": optimized.used_view_name,
        "raw_work": raw.result.stats.total_work,
        "optimized_work": optimized.result.stats.total_work,
        "results_equal": raw_pairs == optimized_pairs,
        "result_pairs": len(raw_pairs),
    }
