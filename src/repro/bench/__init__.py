"""Experiment harness: regenerates every table and figure of the evaluation."""

from repro.bench.figures import (
    BLAST_RADIUS_CYPHER,
    EstimationPoint,
    enumeration_pruning,
    figure5_estimation,
    figure6_size_reduction,
    figure7_runtimes,
    figure8_degree_ccdf,
    listing4_rewrite,
    selection_sweep,
    table3_datasets,
    table4_workload,
)
from repro.bench.reporting import format_series, format_table, human_count
from repro.bench.trajectory import (
    TRAJECTORY_FILENAME,
    collect_records,
    fold_trajectory,
    latest_values,
)

__all__ = [
    "BLAST_RADIUS_CYPHER",
    "EstimationPoint",
    "TRAJECTORY_FILENAME",
    "collect_records",
    "enumeration_pruning",
    "fold_trajectory",
    "latest_values",
    "figure5_estimation",
    "figure6_size_reduction",
    "figure7_runtimes",
    "figure8_degree_ccdf",
    "format_series",
    "format_table",
    "human_count",
    "listing4_rewrite",
    "selection_sweep",
    "table3_datasets",
    "table4_workload",
]
