"""Plain-text reporting helpers for the experiment harness.

Every experiment in :mod:`repro.bench.figures` returns plain data (lists of
dict rows or dataclasses); these helpers render them as aligned text tables so
the benchmarks and ``examples/run_experiments.py`` can print the same rows and
series the paper's tables and figures report.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None,
                 title: str | None = None, float_format: str = "{:.3g}") -> str:
    """Render rows of dictionaries as an aligned text table.

    Args:
        rows: Row dictionaries (missing keys render as empty cells).
        columns: Column order (defaults to the keys of the first row).
        title: Optional title line printed above the table.
        float_format: Format spec applied to float values.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        if value is None:
            return ""
        return str(value)

    table = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(columns[i]), max((len(line[i]) for line in table), default=0))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in table:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Iterable[tuple[Any, Any]]], title: str | None = None,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render named (x, y) series as text (one block per series)."""
    lines = []
    if title:
        lines.append(title)
    for name, points in series.items():
        lines.append(f"[{name}]")
        lines.append(f"  {x_label:>12}  {y_label:>14}")
        for x, y in points:
            y_rendered = f"{y:.4g}" if isinstance(y, float) else str(y)
            lines.append(f"  {str(x):>12}  {y_rendered:>14}")
    return "\n".join(lines)


def human_count(value: float) -> str:
    """Format a count with K/M/B suffixes (used in Table III style output)."""
    for threshold, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:.0f}"
