"""Durable storage for materialized views.

The paper materializes views as physical data objects inside the graph engine
(§III-C); in this reproduction the :class:`~repro.views.catalog.ViewCatalog`
lived only in process memory, so every restart re-paid the full
materialization cost.  :class:`PersistentViewStore` fixes that: it snapshots a
catalog — each view's definition, materialized graph, and measured creation
cost — to disk and reloads it, so a catalog survives process restarts and
large view sets can spill out of memory.

Two interchangeable backends are provided:

* ``jsonl`` — one JSON record per view per line; human-inspectable, diffable,
  and trivially streamable.
* ``sqlite`` — a single-table SQLite database keyed by view signature;
  supports per-view upsert/delete without rewriting the whole file.

The backend is inferred from the path suffix (``.db`` / ``.sqlite`` /
``.sqlite3`` select SQLite, anything else JSONL) unless given explicitly.
"""

from __future__ import annotations

import json
import os
import sqlite3
from contextlib import closing
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ViewError
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.views.catalog import MaterializedView, ViewCatalog
from repro.views.definitions import (
    ViewDefinition,
    definition_from_dict,
    definition_to_dict,
)

#: Path suffixes that select the SQLite backend when none is given.
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

#: Supported backend names.
BACKENDS = ("jsonl", "sqlite")


def _signature_key(definition: ViewDefinition) -> str:
    """Stable string form of a definition signature (usable as a DB key)."""
    return json.dumps(definition.signature(), default=str)


def _view_to_record(view: MaterializedView) -> dict[str, Any]:
    return {
        "definition": definition_to_dict(view.definition),
        "graph": graph_to_dict(view.graph),
        "creation_seconds": view.creation_seconds,
    }


def _view_from_record(record: dict[str, Any]) -> MaterializedView:
    definition = definition_from_dict(record["definition"])
    graph = graph_from_dict(record["graph"])
    return MaterializedView(
        definition=definition,
        graph=graph,
        creation_seconds=record.get("creation_seconds", 0.0),
    )


class PersistentViewStore:
    """Disk-backed snapshot + reload of materialized views.

    Example:
        >>> store = PersistentViewStore("/tmp/views.jsonl")  # doctest: +SKIP
        >>> store.save_catalog(catalog)                      # doctest: +SKIP
        >>> restored = store.load_catalog()                  # doctest: +SKIP
    """

    def __init__(self, path: str | Path, backend: str | None = None) -> None:
        """Open (or create) a persistent store at ``path``.

        Args:
            path: Target file.  Parent directories are created on first write.
            backend: ``"jsonl"`` or ``"sqlite"``; inferred from the path
                suffix when omitted.
        """
        self.path = Path(path)
        if backend is None:
            backend = "sqlite" if self.path.suffix.lower() in _SQLITE_SUFFIXES else "jsonl"
        if backend not in BACKENDS:
            raise ViewError(f"unknown persistence backend {backend!r}; expected one of {BACKENDS}")
        self.backend = backend

    # ----------------------------------------------------------- catalog level
    def save_catalog(self, catalog: ViewCatalog) -> int:
        """Replace the stored snapshot with the catalog's current views.

        Returns the number of views written.
        """
        views = list(catalog)
        records = {_signature_key(v.definition): _view_to_record(v) for v in views}
        self._write_all(records)
        return len(views)

    def load_catalog(self, catalog: ViewCatalog | None = None) -> ViewCatalog:
        """Reload every stored view into ``catalog`` (a fresh one by default)."""
        catalog = catalog if catalog is not None else ViewCatalog()
        for view in self.load_views():
            catalog.register(view)
        return catalog

    def load_views(self) -> list[MaterializedView]:
        """Materialized views currently stored on disk."""
        return [_view_from_record(record) for _, record in self._read_all()]

    # -------------------------------------------------------------- view level
    def save_view(self, view: MaterializedView) -> None:
        """Insert or replace a single view (keyed by definition signature)."""
        key = _signature_key(view.definition)
        record = _view_to_record(view)
        if self.backend == "sqlite":
            with closing(self._connect()) as conn, conn:
                conn.execute(
                    "INSERT OR REPLACE INTO views (signature, name, payload) "
                    "VALUES (?, ?, ?)",
                    (key, view.definition.name, json.dumps(record)),
                )
            return
        records = dict(self._read_all())
        records[key] = record
        self._write_all(records)

    def delete_view(self, definition: ViewDefinition) -> bool:
        """Remove one stored view; returns whether it was present."""
        key = _signature_key(definition)
        if self.backend == "sqlite":
            with closing(self._connect()) as conn, conn:
                cursor = conn.execute("DELETE FROM views WHERE signature = ?", (key,))
                return cursor.rowcount > 0
        records = dict(self._read_all())
        if key not in records:
            return False
        del records[key]
        self._write_all(records)
        return True

    def clear(self) -> None:
        """Drop every stored view."""
        self._write_all({})

    # ------------------------------------------------------------ advisor state
    def save_state(self, key: str, payload: dict[str, Any]) -> None:
        """Persist one JSON-serializable advisor-state blob under ``key``.

        State lives next to (but independent of) the view records: the
        workload-adaptive lifecycle engine checkpoints its workload log and
        calibration here, so a restarted process re-selects views from the
        same evidence it had before the restart.  ``clear()``/``save_catalog``
        do not touch state blobs.
        """
        serialized = json.dumps(payload)
        if self.backend == "sqlite":
            with closing(self._connect()) as conn, conn:
                conn.execute(
                    "INSERT OR REPLACE INTO state (key, payload) VALUES (?, ?)",
                    (key, serialized),
                )
            return
        states = self._read_states()
        states[key] = payload
        self._write_states(states)

    def load_state(self, key: str) -> dict[str, Any] | None:
        """The state blob stored under ``key``, or None when absent."""
        if self.backend == "sqlite":
            if not self.path.exists():
                return None
            with closing(self._connect()) as conn, conn:
                row = conn.execute(
                    "SELECT payload FROM state WHERE key = ?", (key,)).fetchone()
            return json.loads(row[0]) if row is not None else None
        return self._read_states().get(key)

    def delete_state(self, key: str) -> bool:
        """Remove one state blob; returns whether it was present."""
        if self.backend == "sqlite":
            if not self.path.exists():
                return False
            with closing(self._connect()) as conn, conn:
                cursor = conn.execute("DELETE FROM state WHERE key = ?", (key,))
                return cursor.rowcount > 0
        states = self._read_states()
        if key not in states:
            return False
        del states[key]
        self._write_states(states)
        return True

    def state_keys(self) -> list[str]:
        """Keys of every stored state blob."""
        if self.backend == "sqlite":
            if not self.path.exists():
                return []
            with closing(self._connect()) as conn, conn:
                return [row[0] for row in conn.execute(
                    "SELECT key FROM state ORDER BY key")]
        return sorted(self._read_states())

    def _state_path(self) -> Path:
        return self.path.with_name(self.path.name + ".state.json")

    def _read_states(self) -> dict[str, dict[str, Any]]:
        path = self._state_path()
        if not path.exists():
            return {}
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def _write_states(self, states: dict[str, dict[str, Any]]) -> None:
        path = self._state_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = path.with_name(path.name + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            json.dump(states, handle)
        os.replace(tmp_path, path)

    # -------------------------------------------------------------- inspection
    def view_names(self) -> list[str]:
        """Names of the stored views (without loading the graphs)."""
        if self.backend == "sqlite":
            if not self.path.exists():
                return []
            with closing(self._connect()) as conn, conn:
                return [row[0] for row in conn.execute(
                    "SELECT name FROM views ORDER BY rowid")]
        return [record["definition"]["name"] for _, record in self._read_all()]

    def __len__(self) -> int:
        if self.backend == "sqlite":
            if not self.path.exists():
                return 0
            with closing(self._connect()) as conn, conn:
                return conn.execute("SELECT COUNT(*) FROM views").fetchone()[0]
        return sum(1 for _ in self._read_all())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PersistentViewStore(path={str(self.path)!r}, backend={self.backend!r})"

    # ------------------------------------------------------------ jsonl plumbing
    def _read_all(self) -> Iterator[tuple[str, dict[str, Any]]]:
        if self.backend == "sqlite":
            if not self.path.exists():
                return
            with closing(self._connect()) as conn, conn:
                rows = conn.execute(
                    "SELECT signature, payload FROM views ORDER BY rowid").fetchall()
            for signature, payload in rows:
                yield signature, json.loads(payload)
            return
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                key = record.pop("signature", None)
                if key is None:
                    key = _signature_key(definition_from_dict(record["definition"]))
                yield key, record

    def _write_all(self, records: dict[str, dict[str, Any]]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.backend == "sqlite":
            with closing(self._connect()) as conn, conn:
                conn.execute("DELETE FROM views")
                conn.executemany(
                    "INSERT INTO views (signature, name, payload) VALUES (?, ?, ?)",
                    [
                        (key, record["definition"]["name"], json.dumps(record))
                        for key, record in records.items()
                    ],
                )
            return
        # Atomic whole-file rewrite: write a sibling temp file, then rename.
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for key, record in records.items():
                payload = {"signature": key, **record}
                handle.write(json.dumps(payload) + "\n")
        os.replace(tmp_path, self.path)

    # ----------------------------------------------------------- sqlite plumbing
    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path)
        conn.execute(
            "CREATE TABLE IF NOT EXISTS views ("
            "signature TEXT PRIMARY KEY, name TEXT NOT NULL, payload TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS state ("
            "key TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        return conn
