"""Backend selection: which physical representation serves which workload.

The :class:`StorageManager` owns the storage decisions the rest of the
codebase should not have to make:

* **Freeze-to-CSR heuristic** — a graph that is *read-mostly* (repeatedly
  consulted without topological mutations in between) and large enough to
  matter is frozen into an immutable
  :class:`~repro.storage.csr.CSRGraphStore` snapshot; small or actively
  mutated graphs stay on the flexible dict-based ``PropertyGraph``.
  Snapshots are cached per graph and invalidated automatically via the
  graph's ``version`` counter.
* **View freezing** — materialized views are read-mostly by construction
  (they are rebuilt or incrementally maintained, never queried mid-mutation),
  so the manager freezes them eagerly when the
  :class:`~repro.views.catalog.ViewCatalog` reports a new materialization.
* **Durability** — the manager optionally owns a
  :class:`~repro.storage.persistent.PersistentViewStore` so catalogs can be
  snapshotted to disk and reloaded across process restarts.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.graph.property_graph import PropertyGraph
from repro.graph.transform import union
from repro.storage.base import GraphLike, GraphStore
from repro.storage.csr import CSRGraphStore
from repro.storage.persistent import PersistentViewStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (catalog -> manager)
    from repro.views.catalog import MaterializedView, ViewCatalog

#: Valid workload hints for :meth:`StorageManager.store_for`.
WORKLOAD_HINTS = ("auto", "read_mostly", "mutating")


@dataclass(frozen=True)
class StoragePolicy:
    """Tunable thresholds for the freeze-to-CSR heuristic.

    Attributes:
        min_edges_to_freeze: Graphs below this edge count stay on the dict
            representation — CSR build cost would exceed any traversal gain.
        read_threshold: Consecutive reads (``store_for`` calls without an
            intervening topological mutation) before an ``auto`` graph is
            considered read-mostly and frozen.
        freeze_views: Whether freshly materialized views are frozen eagerly.
    """

    min_edges_to_freeze: int = 128
    read_threshold: int = 2
    freeze_views: bool = True


@dataclass
class StorageStats:
    """Counters describing what the manager has done (for reports/tests)."""

    snapshots_built: int = 0
    snapshot_hits: int = 0
    dict_served: int = 0
    views_frozen: int = 0
    views_refrozen: int = 0
    views_dropped: int = 0
    unions_built: int = 0
    union_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "snapshots_built": self.snapshots_built,
            "snapshot_hits": self.snapshot_hits,
            "dict_served": self.dict_served,
            "views_frozen": self.views_frozen,
            "views_refrozen": self.views_refrozen,
            "views_dropped": self.views_dropped,
            "unions_built": self.unions_built,
            "union_hits": self.union_hits,
        }


@dataclass
class _GraphState:
    """Per-graph bookkeeping (kept alive only while the graph is)."""

    ref: weakref.ref
    observed_version: int = -1
    reads_since_change: int = 0
    snapshot: CSRGraphStore | None = None


@dataclass
class _UnionEntry:
    """A cached base ∪ view-edges graph, valid for one (base, view) version pair.

    Strong references to the inputs are held on purpose: they make the
    identity checks in :meth:`StorageManager.union_for` reliable (a live
    reference can never have its ``id()`` recycled by a newer object) at the
    cost of keeping at most :data:`_MAX_UNION_ENTRIES` graphs alive.
    """

    graph: PropertyGraph
    base: PropertyGraph
    base_version: int
    view: object  # MaterializedView (typed loosely to avoid an import cycle)
    view_graph: PropertyGraph
    view_version: int


#: Mixed-rewrite union graphs retained at once (small: each is a full copy).
_MAX_UNION_ENTRIES = 8


# Every manager's freeze() publishes its snapshot here, so independent
# managers (e.g. a Kaskade instance's and the analytics-kernel dispatch's)
# never build duplicate CSR snapshots of the same live graph.  Entries are
# validated against both the graph identity (ids can be recycled after GC)
# and the graph's version counter, and reaped when the graph is collected.
# All access goes through _REGISTRY_LOCK: the registry is shared across
# every manager in the process, and the serving layer freezes from a writer
# thread while analytics dispatch may freeze from readers — unsynchronized
# check-then-pop sequences could drop a concurrent publisher's entry or
# leave two managers each believing their build won.
_SNAPSHOT_REGISTRY: dict[int, tuple[weakref.ref, CSRGraphStore]] = {}
_REGISTRY_LOCK = threading.Lock()


def _publish_snapshot(graph: PropertyGraph, snapshot: CSRGraphStore) -> None:
    key = id(graph)

    def _reap(_ref: weakref.ref, *, _key=key) -> None:
        with _REGISTRY_LOCK:
            _SNAPSHOT_REGISTRY.pop(_key, None)

    with _REGISTRY_LOCK:
        current = _SNAPSHOT_REGISTRY.get(key)
        if (current is not None and current[0]() is graph
                and current[1].source_version == graph.version):
            # A concurrent freeze already published a fresh snapshot for this
            # exact version; keep the first one so every manager adopts it.
            return
        _SNAPSHOT_REGISTRY[key] = (weakref.ref(graph, _reap), snapshot)


def lookup_snapshot(graph: PropertyGraph) -> CSRGraphStore | None:
    """A fresh CSR snapshot of ``graph`` built by *any* manager, or ``None``.

    Consumers that only profit from a snapshot when the build cost is
    already paid (analytics dispatch, one-shot connector enumeration) probe
    this instead of freezing; staleness is detected via the graph's
    ``version`` counter.  A stale entry can never become fresh again (the
    counter is monotonic), so it is evicted on sight instead of pinning the
    snapshot until the graph dies.
    """
    key = id(graph)
    with _REGISTRY_LOCK:
        entry = _SNAPSHOT_REGISTRY.get(key)
        if entry is None or entry[0]() is not graph:
            return None
        if entry[1].source_version != graph.version:
            _SNAPSHOT_REGISTRY.pop(key, None)
            return None
        return entry[1]


def discard_snapshot(graph: PropertyGraph) -> None:
    """Drop ``graph``'s published snapshot (explicit memory release)."""
    with _REGISTRY_LOCK:
        entry = _SNAPSHOT_REGISTRY.get(id(graph))
        if entry is not None and entry[0]() is graph:
            _SNAPSHOT_REGISTRY.pop(id(graph), None)


class StorageManager:
    """Selects the physical graph representation per workload.

    Example:
        >>> from repro.datasets.random_graphs import erdos_renyi_graph
        >>> manager = StorageManager()
        >>> graph = erdos_renyi_graph(64, 256)
        >>> manager.store_for(graph) is graph   # first sight: not yet proven read-mostly
        True
        >>> frozen = manager.store_for(graph)   # second read with no mutation
        >>> frozen.backend
        'csr'
    """

    def __init__(self, policy: StoragePolicy | None = None,
                 persist_path: str | Path | None = None,
                 persist_backend: str | None = None) -> None:
        """Create a manager.

        Args:
            policy: Freeze heuristics (defaults to :class:`StoragePolicy`).
            persist_path: When given, the manager owns a
                :class:`PersistentViewStore` at this path.
            persist_backend: Backend override for the persistent store.
        """
        self.policy = policy or StoragePolicy()
        self.stats = StorageStats()
        self.persistent: PersistentViewStore | None = None
        if persist_path is not None:
            self.persistent = PersistentViewStore(persist_path, backend=persist_backend)
        self._states: dict[int, _GraphState] = {}
        self._unions: dict[tuple[int, int], _UnionEntry] = {}

    # -------------------------------------------------------- backend selection
    def store_for(self, graph: GraphLike, workload: str = "auto") -> GraphLike:
        """The representation the caller should read from.

        Args:
            graph: A mutable graph or an existing store (stores pass through).
            workload: ``"auto"`` applies the read-mostly heuristic,
                ``"read_mostly"`` freezes immediately (subject to the size
                floor), ``"mutating"`` always serves the dict graph and drops
                any cached snapshot.

        Returns:
            A :class:`CSRGraphStore` snapshot when the heuristic (or hint)
            selects the read-optimized backend, otherwise ``graph`` itself.
        """
        if workload not in WORKLOAD_HINTS:
            raise ValueError(
                f"workload must be one of {WORKLOAD_HINTS}, got {workload!r}")
        if isinstance(graph, GraphStore):
            return graph
        state = self._state_of(graph)

        if workload == "mutating":
            state.snapshot = None
            state.reads_since_change = 0
            state.observed_version = graph.version
            self.stats.dict_served += 1
            return graph

        if state.observed_version == graph.version:
            state.reads_since_change += 1
        else:
            # The graph mutated since we last looked: restart the read streak.
            state.observed_version = graph.version
            state.reads_since_change = 1
            state.snapshot = None

        if state.snapshot is not None and state.snapshot.source_version == graph.version:
            self.stats.snapshot_hits += 1
            return state.snapshot

        eligible = graph.num_edges >= self.policy.min_edges_to_freeze
        read_mostly = (workload == "read_mostly"
                       or state.reads_since_change >= self.policy.read_threshold)
        if eligible and read_mostly:
            return self.freeze(graph)
        self.stats.dict_served += 1
        return graph

    def backend_for(self, graph: GraphLike, workload: str = "auto") -> str:
        """Name of the backend :meth:`store_for` would serve (``csr``/``dict``)."""
        store = self.store_for(graph, workload)
        return getattr(store, "backend", "dict")

    def freeze(self, graph: PropertyGraph) -> CSRGraphStore:
        """Force a CSR snapshot of ``graph`` (cached until the graph mutates).

        Fresh snapshots published by *other* managers are adopted instead of
        rebuilt, and every build is published to the shared registry
        (:func:`lookup_snapshot`).
        """
        state = self._state_of(graph)
        if state.snapshot is not None and state.snapshot.source_version == graph.version:
            self.stats.snapshot_hits += 1
            return state.snapshot
        snapshot = lookup_snapshot(graph)
        if snapshot is not None:
            self.stats.snapshot_hits += 1
        else:
            snapshot = CSRGraphStore.from_graph(graph)
            self.stats.snapshots_built += 1
            _publish_snapshot(graph, snapshot)
        state.snapshot = snapshot
        state.observed_version = graph.version
        return snapshot

    def cached_snapshot(self, graph: PropertyGraph) -> CSRGraphStore | None:
        """An already-built CSR snapshot of ``graph`` at its *current* version.

        Returns ``None`` instead of building: callers that only profit from a
        snapshot when the build cost is already paid (e.g. one-shot connector
        path enumeration) use this to probe without triggering a freeze.
        """
        state = self._states.get(id(graph))
        if (state is not None and state.ref() is graph
                and state.snapshot is not None
                and state.snapshot.source_version == graph.version):
            return state.snapshot
        return None

    def invalidate(self, graph: PropertyGraph) -> None:
        """Drop any cached snapshot of ``graph`` (e.g. before bulk mutation).

        Also retracts the snapshot from the shared registry, so explicit
        invalidation releases the memory everywhere at once.
        """
        state = self._states.get(id(graph))
        if state is not None:
            state.snapshot = None
            state.reads_since_change = 0
        discard_snapshot(graph)

    def _state_of(self, graph: PropertyGraph) -> _GraphState:
        key = id(graph)
        state = self._states.get(key)
        if state is None or state.ref() is not graph:
            # New graph, or a dead graph's id was recycled.
            state = _GraphState(ref=weakref.ref(graph, self._make_reaper(key)))
            self._states[key] = state
        return state

    def _make_reaper(self, key: int):
        def _reap(_ref: weakref.ref, *, _states=self._states, _key=key) -> None:
            _states.pop(_key, None)
        return _reap

    # ----------------------------------------------------------- union graphs
    def union_for(self, base: PropertyGraph, view: "MaterializedView",
                  name: str | None = None) -> PropertyGraph:
        """The base ∪ view-edges graph mixed connector rewrites run against.

        Building the union copies every vertex and edge, which used to happen
        on *every* mixed-rewrite execution; the manager caches it per
        (base graph, view) pair and rebuilds only when either side's
        ``version`` moved (or the view's graph was swapped by
        re-materialization).  The cache is bounded to
        :data:`_MAX_UNION_ENTRIES` entries, oldest evicted first.
        """
        key = (id(base), id(view))
        view_graph = view.graph
        entry = self._unions.get(key)
        if (entry is not None
                and entry.base is base and entry.view is view
                and entry.view_graph is view_graph
                and entry.base_version == base.version
                and entry.view_version == view_graph.version):
            self.stats.union_hits += 1
            return entry.graph
        combined = union(base, view_graph,
                         name=name or f"{base.name}+{view.definition.name}")
        if key not in self._unions and len(self._unions) >= _MAX_UNION_ENTRIES:
            self._unions.pop(next(iter(self._unions)))
        self._unions[key] = _UnionEntry(graph=combined, base=base,
                                        base_version=base.version, view=view,
                                        view_graph=view_graph,
                                        view_version=view_graph.version)
        self.stats.unions_built += 1
        return combined

    # ------------------------------------------------------------ view hooks
    def on_materialized(self, view: "MaterializedView") -> None:
        """Catalog hook: a view was (re)materialized or registered.

        Views are read-mostly by construction, so eligible ones are frozen
        eagerly and the snapshot is attached to the view for hot-path reads.
        """
        if not self.policy.freeze_views:
            return
        if view.graph.num_edges < self.policy.min_edges_to_freeze:
            return
        view.store = self.freeze(view.graph)
        self.stats.views_frozen += 1

    def on_dropped(self, view: "MaterializedView") -> None:
        """Catalog hook: a view was dropped/evicted — release every artifact.

        The view's CSR snapshot is detached and retracted from the shared
        registry, per-graph freeze bookkeeping is forgotten, cached union
        graphs built over the view are discarded, and — when a persistent
        store is attached — the view's on-disk record is deleted so a later
        catalog restore cannot resurrect it.
        """
        view.store = None
        self.invalidate(view.graph)
        self._states.pop(id(view.graph), None)
        self._unions = {key: entry for key, entry in self._unions.items()
                        if entry.view is not view}
        if self.persistent is not None:
            self.persistent.delete_view(view.definition)
        self.stats.views_dropped += 1

    def on_maintained(self, view: "MaterializedView",
                      base_graph: PropertyGraph | None = None) -> None:
        """Maintenance hook: a view's graph was updated (in place or rebuilt).

        Instead of letting the stale CSR snapshot be dropped and hot reads
        degrade to the dict graph forever (the pre-delta behaviour of
        ``MaterializedView.read_store``), the snapshot is re-frozen at the
        view's new version so rewritten queries stay on the read-optimized
        path.  Views that shrank below the freeze floor fall back to the dict
        graph.  ``base_graph`` is accepted for symmetry with the maintenance
        subsystem; union-cache entries self-invalidate via version checks.
        """
        if not self.policy.freeze_views:
            return
        if view.graph.num_edges < self.policy.min_edges_to_freeze:
            view.store = None
            return
        already_fresh = (view.store is not None
                         and getattr(view.store, "source_version", None) == view.graph.version)
        if already_fresh:
            return
        view.store = self.freeze(view.graph)
        self.stats.views_refrozen += 1

    # ------------------------------------------------------------- durability
    def save_catalog(self, catalog: "ViewCatalog") -> int:
        """Snapshot a catalog to the attached persistent store.

        Raises:
            ViewError: If the manager was created without ``persist_path``.
        """
        store = self._require_persistent()
        return store.save_catalog(catalog)

    def load_catalog(self, catalog: "ViewCatalog | None" = None) -> "ViewCatalog":
        """Reload the persisted views into ``catalog`` (a fresh one by default)."""
        from repro.views.catalog import ViewCatalog

        store = self._require_persistent()
        catalog = catalog if catalog is not None else ViewCatalog(storage=self)
        return store.load_catalog(catalog)

    def _require_persistent(self) -> PersistentViewStore:
        if self.persistent is None:
            from repro.errors import ViewError

            raise ViewError(
                "no persistent store attached; create the StorageManager with "
                "persist_path=... or use PersistentViewStore directly")
        return self.persistent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageManager(policy={self.policy}, persistent={self.persistent!r}, "
            f"stats={self.stats.as_dict()})"
        )
