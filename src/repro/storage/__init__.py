"""Pluggable graph storage subsystem.

The paper's architecture (§II) delegates physical storage to an external
graph engine while the optimizer reasons about views abstractly; this
subpackage plays that role inside the reproduction and makes the physical
representation *pluggable*:

* :mod:`repro.storage.base` — the abstract :class:`GraphStore` read interface
  every backend implements (the dict ``PropertyGraph`` satisfies it
  structurally),
* :mod:`repro.storage.csr` — :class:`CSRGraphStore`, an immutable
  compressed-sparse-row snapshot with O(1) degrees and contiguous neighbor
  expansion for analytics and executor hot paths,
* :mod:`repro.storage.persistent` — :class:`PersistentViewStore`, JSONL- or
  SQLite-backed durability for materialized view catalogs,
* :mod:`repro.storage.manager` — :class:`StorageManager`, which owns backend
  selection (freeze-to-CSR when a graph or view is read-mostly) and the
  optional persistence wiring.

Once callers go through :class:`GraphStore`, new backends (sharded, cached,
remote) are drop-in.
"""

from repro.storage.base import (
    GraphLike,
    GraphStore,
    PropertyGraphStore,
    ensure_store,
    underlying_graph,
)
from repro.storage.csr import CSRGraphStore
from repro.storage.partition import (
    GraphPartition,
    GraphPartitioner,
    PartitionSpec,
    attach_partition,
)
from repro.storage.manager import (
    StorageManager,
    StoragePolicy,
    StorageStats,
    WORKLOAD_HINTS,
)
from repro.storage.persistent import BACKENDS, PersistentViewStore

__all__ = [
    "BACKENDS",
    "CSRGraphStore",
    "GraphLike",
    "GraphPartition",
    "GraphPartitioner",
    "GraphStore",
    "PartitionSpec",
    "PersistentViewStore",
    "PropertyGraphStore",
    "StorageManager",
    "StoragePolicy",
    "StorageStats",
    "WORKLOAD_HINTS",
    "attach_partition",
    "ensure_store",
    "underlying_graph",
]
