"""Abstract graph storage interface.

The paper delegates physical graph storage to an external engine (Neo4j,
§II, §VII-A) while the optimizer reasons about graphs and views abstractly.
This module introduces the same separation inside the reproduction: a
:class:`GraphStore` captures the *read* operations the analytics, the query
executor, and the view machinery need — vertex/edge iteration, typed
adjacency lookup, degree, and neighbor expansion — so that callers can run
unchanged against any physical representation (the mutable dict-based
:class:`~repro.graph.property_graph.PropertyGraph`, the read-optimized
:class:`~repro.storage.csr.CSRGraphStore`, or future backends).

:class:`PropertyGraph` already implements this surface; the protocol here is
the contract new backends must satisfy, and :class:`PropertyGraphStore` is
the trivial adapter that makes the dict graph a first-class store.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Union

from repro.graph.property_graph import Edge, PropertyGraph, Vertex, VertexId


class GraphStore(abc.ABC):
    """Read interface over a physical graph representation.

    The method names and semantics deliberately mirror the read surface of
    :class:`~repro.graph.property_graph.PropertyGraph`, so every consumer in
    the codebase (analytics, executor, statistics, view materialization) can
    accept either a raw ``PropertyGraph`` or any ``GraphStore`` — the union is
    exported as :data:`GraphLike`.
    """

    name: str

    # ------------------------------------------------------------------ sizes
    @property
    @abc.abstractmethod
    def num_vertices(self) -> int:
        """Number of vertices in the store."""

    @property
    @abc.abstractmethod
    def num_edges(self) -> int:
        """Number of edges in the store."""

    def __len__(self) -> int:
        return self.num_vertices

    # --------------------------------------------------------------- vertices
    @abc.abstractmethod
    def has_vertex(self, vertex_id: VertexId) -> bool:
        """Whether the vertex id is present."""

    @abc.abstractmethod
    def vertex(self, vertex_id: VertexId) -> Vertex:
        """Look up a vertex by id (raises ``VertexNotFoundError`` when absent)."""

    @abc.abstractmethod
    def vertices(self, vertex_type: str | None = None) -> Iterator[Vertex]:
        """Iterate vertices, optionally restricted to one type."""

    @abc.abstractmethod
    def vertex_ids(self, vertex_type: str | None = None) -> list[VertexId]:
        """Vertex ids, optionally restricted to one type."""

    @abc.abstractmethod
    def vertex_types(self) -> list[str]:
        """Distinct vertex types present in the data."""

    @abc.abstractmethod
    def count_vertices(self, vertex_type: str | None = None) -> int:
        """Count vertices, optionally restricted to one type."""

    # ------------------------------------------------------------------ edges
    @abc.abstractmethod
    def edges(self, label: str | None = None) -> Iterator[Edge]:
        """Iterate edges, optionally restricted to one label."""

    @abc.abstractmethod
    def edge_labels(self) -> list[str]:
        """Distinct edge labels present in the data."""

    @abc.abstractmethod
    def count_edges(self, label: str | None = None) -> int:
        """Count edges, optionally restricted to one label."""

    # -------------------------------------------------------------- adjacency
    @abc.abstractmethod
    def out_edges(self, vertex_id: VertexId, label: str | None = None) -> Iterable[Edge]:
        """Outgoing edges of a vertex, optionally restricted to one label."""

    @abc.abstractmethod
    def in_edges(self, vertex_id: VertexId, label: str | None = None) -> Iterable[Edge]:
        """Incoming edges of a vertex, optionally restricted to one label."""

    @abc.abstractmethod
    def successors(self, vertex_id: VertexId, label: str | None = None
                   ) -> Iterable[VertexId]:
        """Target ids of outgoing edges (with duplicates for parallel edges)."""

    @abc.abstractmethod
    def predecessors(self, vertex_id: VertexId, label: str | None = None
                     ) -> Iterable[VertexId]:
        """Source ids of incoming edges (with duplicates for parallel edges)."""

    @abc.abstractmethod
    def out_degree(self, vertex_id: VertexId, label: str | None = None) -> int:
        """Number of outgoing edges of a vertex (optionally per label)."""

    @abc.abstractmethod
    def in_degree(self, vertex_id: VertexId, label: str | None = None) -> int:
        """Number of incoming edges of a vertex (optionally per label)."""

    # ----------------------------------------------------- derived operations
    def degree(self, vertex_id: VertexId) -> int:
        """Total degree (in + out)."""
        return self.in_degree(vertex_id) + self.out_degree(vertex_id)

    def neighbors(self, vertex_id: VertexId) -> set[VertexId]:
        """Distinct undirected neighbors of a vertex."""
        return set(self.successors(vertex_id)) | set(self.predecessors(vertex_id))

    def has_edge(self, source: VertexId, target: VertexId,
                 label: str | None = None) -> bool:
        """Whether at least one ``source -> target`` edge (with ``label``) exists."""
        if not self.has_vertex(source):
            return False
        return any(t == target for t in self.successors(source, label))


#: Anything the read-only consumers of a graph accept: the mutable dict graph
#: or any pluggable store.  ``PropertyGraph`` satisfies the ``GraphStore``
#: surface structurally (duck typing), it just does not inherit from the ABC.
GraphLike = Union[PropertyGraph, GraphStore]


class PropertyGraphStore(GraphStore):
    """Adapter exposing a mutable :class:`PropertyGraph` through the store API.

    All calls delegate to the wrapped graph, so the adapter sees mutations
    immediately; it exists so code paths that require an actual
    :class:`GraphStore` instance (e.g. uniform bookkeeping in the
    :class:`~repro.storage.manager.StorageManager`) can treat the dict graph
    like any other backend.
    """

    backend = "dict"

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self.name = graph.name

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def version(self) -> int:
        """Mutation counter of the underlying graph (for cache invalidation)."""
        return self.graph.version

    def has_vertex(self, vertex_id: VertexId) -> bool:
        return self.graph.has_vertex(vertex_id)

    def vertex(self, vertex_id: VertexId) -> Vertex:
        return self.graph.vertex(vertex_id)

    def vertices(self, vertex_type: str | None = None) -> Iterator[Vertex]:
        return self.graph.vertices(vertex_type)

    def vertex_ids(self, vertex_type: str | None = None) -> list[VertexId]:
        return self.graph.vertex_ids(vertex_type)

    def vertex_types(self) -> list[str]:
        return self.graph.vertex_types()

    def count_vertices(self, vertex_type: str | None = None) -> int:
        return self.graph.count_vertices(vertex_type)

    def edges(self, label: str | None = None) -> Iterator[Edge]:
        return self.graph.edges(label)

    def edge_labels(self) -> list[str]:
        return self.graph.edge_labels()

    def count_edges(self, label: str | None = None) -> int:
        return self.graph.count_edges(label)

    def out_edges(self, vertex_id: VertexId, label: str | None = None) -> Iterable[Edge]:
        return self.graph.out_edges(vertex_id, label)

    def in_edges(self, vertex_id: VertexId, label: str | None = None) -> Iterable[Edge]:
        return self.graph.in_edges(vertex_id, label)

    def successors(self, vertex_id: VertexId, label: str | None = None
                   ) -> Iterable[VertexId]:
        return self.graph.successors(vertex_id, label)

    def predecessors(self, vertex_id: VertexId, label: str | None = None
                     ) -> Iterable[VertexId]:
        return self.graph.predecessors(vertex_id, label)

    def out_degree(self, vertex_id: VertexId, label: str | None = None) -> int:
        return self.graph.out_degree(vertex_id, label)

    def in_degree(self, vertex_id: VertexId, label: str | None = None) -> int:
        return self.graph.in_degree(vertex_id, label)

    def has_edge(self, source: VertexId, target: VertexId,
                 label: str | None = None) -> bool:
        return self.graph.has_edge(source, target, label)

    def estimated_footprint(self, bytes_per_vertex: int = 64,
                            bytes_per_edge: int = 48) -> int:
        return self.graph.estimated_footprint(bytes_per_vertex, bytes_per_edge)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PropertyGraphStore({self.graph!r})"


def ensure_store(graph: GraphLike) -> GraphStore:
    """Wrap a :class:`PropertyGraph` in an adapter; pass stores through."""
    if isinstance(graph, GraphStore):
        return graph
    return PropertyGraphStore(graph)


def underlying_graph(graph: GraphLike) -> PropertyGraph | None:
    """The mutable ``PropertyGraph`` behind a store, when there is one."""
    if isinstance(graph, PropertyGraph):
        return graph
    if isinstance(graph, PropertyGraphStore):
        return graph.graph
    return None
