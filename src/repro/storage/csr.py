"""Compressed-sparse-row (CSR) graph snapshots.

:class:`CSRGraphStore` is an immutable, read-optimized snapshot of a
:class:`~repro.graph.property_graph.PropertyGraph`.  Vertex ids are interned
to dense integers, and adjacency is stored as offset + target arrays — the
classic CSR layout — both combined and per edge label, giving:

* **O(1)** in/out degree (overall *and* per label; the dict graph scans the
  incident edge list for per-label degree),
* **O(deg)** neighbor expansion as a contiguous list slice, with no per-edge
  dictionary lookups or generator frames on the hot path,
* direct access to the integer-space ``(offsets, targets)`` arrays for
  PageRank-style sweeps and other whole-graph kernels.

When :mod:`numpy` is importable the ``(offsets, targets)`` pairs, the
per-type index slices, and the derived undirected adjacency are contiguous
``ndarray``\\ s (``int32``, widened to ``int64`` past :data:`_INT32_LIMIT`),
which is what the vectorized analytics kernels
(:mod:`repro.analytics.kernels`) and the physical executor's batched
neighbor gather operate on directly.  Without numpy the layout transparently
falls back to stdlib :class:`array.array` and every consumer stays on the
pure-python loop kernels — same results, no hard dependency.

The snapshot freezes the *topology*: adding or removing vertices/edges raises
:class:`~repro.errors.GraphError`.  Vertex and edge **property dictionaries
are shared** with the source graph (like :meth:`PropertyGraph.copy`, property
payloads are not deep-copied), so analytics that annotate vertices — e.g. the
Q7 label-propagation write-back — behave identically on either
representation.  Topological mutations of the source graph after the snapshot
do not affect the CSR store; staleness is detectable by comparing
:attr:`source_version` with the source graph's ``version`` counter.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Sequence

try:  # pragma: no cover - exercised via both-tier differential tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships in CI; stdlib fallback
    _np = None

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.property_graph import Edge, PropertyGraph, Vertex, VertexId
from repro.graph.schema import GraphSchema
from repro.storage.base import GraphStore

#: Signed native-long typecode used for offset/target arrays (numpy-less fallback).
_ARRAY_TYPECODE = "q"

#: Largest value stored in an ``int32`` index array; arrays whose maximum
#: entry would exceed it (vertex counts for ``targets``, edge counts for
#: ``offsets``) widen to ``int64``.  Module-level so the widening guard is
#: testable without building a 2-billion-edge graph.
_INT32_LIMIT = 2**31 - 1


def _index_dtype(max_value: int):
    """The narrowest index dtype that can hold ``max_value``."""
    return _np.int32 if max_value <= _INT32_LIMIT else _np.int64


def _index_array(values: list[int], max_value: int):
    """Pack ``values`` into a contiguous index array (ndarray when available)."""
    if _np is not None:
        return _np.asarray(values, dtype=_index_dtype(max_value))
    return array(_ARRAY_TYPECODE, values)


def gather_slices(offsets, targets, indices):
    """One vectorized gather: the concatenated CSR slices of ``indices``.

    Returns ``(flat_targets, counts)`` where ``flat_targets`` is
    ``targets[offsets[i]:offsets[i+1]]`` for every ``i`` in ``indices``,
    concatenated in order, and ``counts[j]`` is the slice length of
    ``indices[j]``.  This is the ``np.repeat``/``np.diff``-style expand every
    vectorized frontier and the executor's batched neighbor expansion build
    on: no per-source python iteration, one pass over the whole batch.

    ``flat_targets`` keeps the dtype of ``targets`` (``int32`` until the
    store widens) and the position arithmetic runs in the narrowest index
    dtype that can address the expansion — halving memory traffic on the
    hot frontier path.  ``counts`` is always ``int64`` so downstream sums
    never overflow.
    """
    starts = offsets[indices]
    counts = (offsets[indices + 1] - starts).astype(_np.int64)
    total = int(counts.sum())
    if total == 0:
        return targets[:0], counts
    # positions[k] walks each slice: repeat every start, then add the
    # within-slice ramp 0..count-1 reconstructed from the cumulative sum.
    pos_dtype = _index_dtype(max(total, len(targets)))
    cumulative = _np.cumsum(counts)
    positions = _np.repeat(starts.astype(pos_dtype, copy=False), counts)
    ramp = _np.arange(total, dtype=pos_dtype)
    ramp -= _np.repeat((cumulative - counts).astype(pos_dtype, copy=False),
                       counts)
    positions += ramp
    return targets[positions], counts


class _LabelCSR:
    """One CSR block: offsets plus aligned target-id / edge-reference arrays.

    ``offsets``/``targets_int`` are numpy ndarrays when numpy is importable
    (``int32``, widened to ``int64`` past :data:`_INT32_LIMIT`) and stdlib
    ``array('q')`` otherwise.
    """

    __slots__ = ("offsets", "targets_int", "targets_ext", "edge_refs",
                 "_neighbor_cache", "_int_neighbor_cache")

    def __init__(self, offsets, targets_int,
                 targets_ext: list[VertexId], edge_refs: list[Edge]) -> None:
        self.offsets = offsets
        self.targets_int = targets_int
        self.targets_ext = targets_ext
        self.edge_refs = edge_refs
        self._neighbor_cache: list[list[VertexId]] | None = None
        self._int_neighbor_cache: list[list[int]] | None = None

    def slice_bounds(self, index: int) -> tuple[int, int]:
        return self.offsets[index], self.offsets[index + 1]

    def neighbor_lists(self) -> list[list[VertexId]]:
        """Per-vertex neighbor-id slices, materialized once on first use.

        Neighbor expansion is *the* hot operation; pre-sliced lists turn each
        call into two index lookups with no per-call allocation.  The inner
        lists alias the cache — callers must treat them as read-only.
        """
        cache = self._neighbor_cache
        if cache is None:
            ext = self.targets_ext
            offsets = (self.offsets.tolist()
                       if _np is not None and isinstance(self.offsets, _np.ndarray)
                       else self.offsets)
            cache = [ext[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)]
            self._neighbor_cache = cache
        return cache

    def int_neighbor_lists(self) -> list[list[int]]:
        """Per-vertex *interned-id* neighbor slices, materialized once.

        The integer-space counterpart of :meth:`neighbor_lists` — the
        representation the analytics kernels iterate.  The inner lists alias
        the cache — callers must treat them as read-only.
        """
        cache = self._int_neighbor_cache
        if cache is None:
            offsets, targets = self.offsets, self.targets_int
            if _np is not None and isinstance(targets, _np.ndarray):
                # .tolist() yields plain python ints — numpy scalars would
                # slow every bytearray/list index on the loop-kernel hot path.
                bounds = offsets.tolist()
                cache = [targets[bounds[i]:bounds[i + 1]].tolist()
                         for i in range(len(bounds) - 1)]
            else:
                cache = [list(targets[offsets[i]:offsets[i + 1]])
                         for i in range(len(offsets) - 1)]
            self._int_neighbor_cache = cache
        return cache


def _build_csr(num_vertices: int, incident: list[list[Edge]],
               endpoint_index: dict[VertexId, int],
               forward: bool) -> _LabelCSR:
    """Pack per-vertex incident edge lists into one CSR block.

    Args:
        num_vertices: Number of interned vertices.
        incident: ``incident[i]`` is the ordered list of edges at vertex ``i``.
        endpoint_index: Maps external vertex id to interned id.
        forward: True packs edge targets (out-CSR), False packs sources (in-CSR).
    """
    raw_offsets = [0] * (num_vertices + 1)
    total = 0
    for i in range(num_vertices):
        total += len(incident[i])
        raw_offsets[i + 1] = total
    raw_targets = [0] * total
    targets_ext: list[VertexId] = [None] * total
    edge_refs: list[Edge] = [None] * total
    pos = 0
    for i in range(num_vertices):
        for edge in incident[i]:
            endpoint = edge.target if forward else edge.source
            raw_targets[pos] = endpoint_index[endpoint]
            targets_ext[pos] = endpoint
            edge_refs[pos] = edge
            pos += 1
    offsets = _index_array(raw_offsets, total)
    targets_int = _index_array(raw_targets, max(num_vertices - 1, 0))
    return _LabelCSR(offsets, targets_int, targets_ext, edge_refs)


class CSRGraphStore(GraphStore):
    """Immutable compressed-sparse-row snapshot of a property graph.

    Example:
        >>> from repro.graph.property_graph import PropertyGraph
        >>> g = PropertyGraph(name="lineage")
        >>> _ = g.add_vertex("j1", "Job"); _ = g.add_vertex("f1", "File")
        >>> _ = g.add_edge("j1", "f1", "WRITES_TO")
        >>> store = CSRGraphStore.from_graph(g)
        >>> store.out_degree("j1"), list(store.successors("j1"))
        (1, ['f1'])
    """

    backend = "csr"

    def __init__(self, graph: PropertyGraph) -> None:
        self.name = graph.name
        self.schema: GraphSchema | None = graph.schema
        #: ``version`` of the source graph when this snapshot was taken; a
        #: mismatch with the live graph's counter means the snapshot is stale.
        self.source_version: int = graph.version
        self.source_name: str = graph.name

        self._ids: list[VertexId] = graph.vertex_ids()
        self._index: dict[VertexId, int] = {vid: i for i, vid in enumerate(self._ids)}
        self._vertex_refs: list[Vertex] = [graph.vertex(vid) for vid in self._ids]
        self._by_type: dict[str, list[int]] = {}
        for i, vertex in enumerate(self._vertex_refs):
            self._by_type.setdefault(vertex.type, []).append(i)

        n = len(self._ids)
        out_all: list[list[Edge]] = [[] for _ in range(n)]
        in_all: list[list[Edge]] = [[] for _ in range(n)]
        out_by_label: dict[str, list[list[Edge]]] = {}
        in_by_label: dict[str, list[list[Edge]]] = {}
        self._edge_list: list[Edge] = list(graph.edges())
        self._edges_by_label: dict[str, list[Edge]] = {}
        for edge in self._edge_list:
            src = self._index[edge.source]
            dst = self._index[edge.target]
            out_all[src].append(edge)
            in_all[dst].append(edge)
            if edge.label not in out_by_label:
                out_by_label[edge.label] = [[] for _ in range(n)]
                in_by_label[edge.label] = [[] for _ in range(n)]
                self._edges_by_label[edge.label] = []
            out_by_label[edge.label][src].append(edge)
            in_by_label[edge.label][dst].append(edge)
            self._edges_by_label[edge.label].append(edge)

        self._out = _build_csr(n, out_all, self._index, forward=True)
        self._in = _build_csr(n, in_all, self._index, forward=False)
        self._undirected_cache: list[list[int]] | None = None
        self._undirected_arrays = None
        self._type_index_arrays: dict[str, object] = {}
        self._type_mask_arrays: dict[str, object] = {}
        self._out_by_label = {
            label: _build_csr(n, incident, self._index, forward=True)
            for label, incident in out_by_label.items()
        }
        self._in_by_label = {
            label: _build_csr(n, incident, self._index, forward=False)
            for label, incident in in_by_label.items()
        }

    @classmethod
    def from_graph(cls, graph: PropertyGraph) -> "CSRGraphStore":
        """Freeze a property graph into a CSR snapshot."""
        return cls(graph)

    # ------------------------------------------------------------------ sizes
    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        return len(self._edge_list)

    @property
    def version(self) -> int:
        """Immutable stores never change; expose the frozen source version."""
        return self.source_version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraphStore(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )

    # --------------------------------------------------------------- interning
    def index_of(self, vertex_id: VertexId) -> int:
        """Interned integer id of a vertex (for kernel-style array sweeps)."""
        try:
            return self._index[vertex_id]
        except KeyError as exc:
            raise VertexNotFoundError(vertex_id) from exc

    def id_at(self, index: int) -> VertexId:
        """External vertex id for an interned integer id."""
        return self._ids[index]

    def indices_of_type(self, vertex_type: str) -> list[int]:
        """Interned ids of the vertices with ``vertex_type``, in intern order."""
        return list(self._by_type.get(vertex_type, ()))

    @property
    def external_ids(self) -> list[VertexId]:
        """The external id per interned index — read-only, no copy.

        The zero-allocation counterpart of :meth:`vertex_ids` for kernels
        that translate interned results back per call.
        """
        return self._ids

    @property
    def vertex_refs(self) -> list[Vertex]:
        """The vertex object per interned index — read-only, no copy.

        Lets batched consumers evaluate per-vertex predicates on gathered
        interned ids without a per-target external-id round trip.
        """
        return self._vertex_refs

    @property
    def uses_ndarrays(self) -> bool:
        """Whether the CSR arrays are numpy ndarrays (vectorized kernels
        require it; the stdlib ``array`` fallback pins the loop tier)."""
        return _np is not None and isinstance(self._out.offsets, _np.ndarray)

    def indices_of_type_array(self, vertex_type: str):
        """:meth:`indices_of_type` as a cached index ndarray (numpy only)."""
        cached = self._type_index_arrays.get(vertex_type)
        if cached is None:
            members = self._by_type.get(vertex_type, ())
            cached = _np.asarray(members,
                                 dtype=_index_dtype(max(self.num_vertices - 1, 0)))
            self._type_index_arrays[vertex_type] = cached
        return cached

    def type_index_mask(self, vertex_type: str):
        """Boolean ndarray, ``mask[i]`` iff vertex ``i`` has ``vertex_type``."""
        cached = self._type_mask_arrays.get(vertex_type)
        if cached is None:
            cached = _np.zeros(self.num_vertices, dtype=bool)
            members = self._by_type.get(vertex_type)
            if members:
                cached[_np.asarray(members, dtype=_np.int64)] = True
            self._type_mask_arrays[vertex_type] = cached
        return cached

    def csr_ndarrays(self, direction: str = "out", label: str | None = None):
        """``(offsets, targets)`` as ndarrays, or ``None`` when the block is
        absent (unknown label) or the store is not ndarray-backed.

        Unlike :meth:`csr_arrays` this never fabricates an empty block and
        never triggers the python neighbor-list caches — it is the entry
        point of the whole-array kernels.
        """
        if not self.uses_ndarrays:
            return None
        block = self._block(direction, label)
        if block is None:
            return None
        return block.offsets, block.targets_int

    def gather_neighbors(self, indices, direction: str = "out",
                         label: str | None = None):
        """Batched neighbor expansion: one gather for many interned sources.

        ``indices`` is an integer ndarray of interned vertex ids; returns
        ``(flat_targets, counts)`` per :func:`gather_slices`.  For an absent
        label every source has zero neighbors.  Requires ndarray backing.
        """
        block = self._block(direction, label)
        if block is None:
            return (_np.empty(0, dtype=_np.int64),
                    _np.zeros(len(indices), dtype=_np.int64))
        return gather_slices(block.offsets, block.targets_int, indices)

    def undirected_csr_arrays(self):
        """The deduped undirected adjacency as ``(offsets, targets)`` ndarrays.

        The whole-array counterpart of :meth:`undirected_int_adjacency` —
        same per-vertex neighbor sets (duplicates from parallel and mutual
        edges removed), packed contiguously for per-pass label-propagation
        votes.  Built and cached on first use; ``None`` without ndarray
        backing.
        """
        if not self.uses_ndarrays:
            return None
        cached = self._undirected_arrays
        if cached is None:
            adjacency = self.undirected_int_adjacency()
            lengths = [len(neighbors) for neighbors in adjacency]
            total = sum(lengths)
            offsets = _np.zeros(self.num_vertices + 1, dtype=_index_dtype(total))
            if adjacency:
                offsets[1:] = _np.cumsum(lengths)
            flat: list[int] = []
            for neighbors in adjacency:
                flat.extend(neighbors)
            targets = _np.asarray(flat,
                                  dtype=_index_dtype(max(self.num_vertices - 1, 0)))
            cached = (offsets, targets)
            self._undirected_arrays = cached
        return cached

    def csr_arrays(self, direction: str = "out", label: str | None = None
                   ) -> tuple[Sequence[int], Sequence[int]]:
        """The raw ``(offsets, targets)`` arrays in interned integer space.

        ``targets[offsets[i]:offsets[i + 1]]`` are the interned neighbor ids of
        the vertex with interned id ``i``.  This is the representation
        whole-graph kernels (PageRank sweeps, BFS frontiers) should iterate.
        """
        block = self._block(direction, label)
        if block is None:
            return (_index_array([0] * (self.num_vertices + 1), 0),
                    _index_array([], 0))
        return block.offsets, block.targets_int

    def int_adjacency(self, direction: str = "out", label: str | None = None
                      ) -> list[list[int]] | None:
        """Pre-sliced interned-id neighbor lists (``None`` for an absent label).

        ``int_adjacency(d, l)[i]`` is the read-only list of interned neighbor
        ids of vertex ``i`` in direction ``d`` over edges labelled ``l`` — the
        zero-allocation structure index-space kernels iterate per frontier
        vertex.  Cached per block on first use.
        """
        block = self._block(direction, label)
        if block is None:
            return None
        return block.int_neighbor_lists()

    @property
    def undirected_adjacency_built(self) -> bool:
        """Whether :meth:`undirected_int_adjacency` has been materialized —
        lets callers account the build cost only when they trigger it."""
        return self._undirected_cache is not None

    def undirected_int_adjacency(self) -> list[list[int]]:
        """Per-vertex *distinct* undirected neighbors in interned-id space.

        The adjacency label propagation consumes: out- and in-neighbors of
        each vertex merged with duplicates (parallel and mutual edges)
        removed, mirroring ``PropertyGraph.neighbors``.  Built and cached on
        first use; callers must treat the lists as read-only.
        """
        cache = self._undirected_cache
        if cache is None:
            out_lists = self._out.int_neighbor_lists()
            in_lists = self._in.int_neighbor_lists()
            cache = []
            for index in range(self.num_vertices):
                forward = out_lists[index]
                backward = in_lists[index]
                if backward or len(forward) > 1:
                    cache.append(list(dict.fromkeys(forward + backward)))
                else:
                    cache.append(forward)
            self._undirected_cache = cache
        return cache

    def aligned_edges(self, direction: str = "out", label: str | None = None
                      ) -> list[Edge] | None:
        """Edge objects aligned with :meth:`csr_arrays`'s ``targets`` array.

        ``aligned_edges(d, l)[pos]`` is the edge whose endpoint is
        ``targets[pos]`` — how kernels bulk-extract an edge property (e.g.
        Q4's timestamp weights) into a flat array once, instead of touching
        property dicts per traversal step.  ``None`` for an absent label.
        """
        block = self._block(direction, label)
        if block is None:
            return None
        return block.edge_refs

    def _block(self, direction: str, label: str | None) -> _LabelCSR | None:
        if direction == "out":
            return self._out if label is None else self._out_by_label.get(label)
        if direction == "in":
            return self._in if label is None else self._in_by_label.get(label)
        raise GraphError(f"direction must be 'out' or 'in', got {direction!r}")

    # --------------------------------------------------------------- vertices
    def has_vertex(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._index

    def vertex(self, vertex_id: VertexId) -> Vertex:
        try:
            return self._vertex_refs[self._index[vertex_id]]
        except KeyError as exc:
            raise VertexNotFoundError(vertex_id) from exc

    def vertices(self, vertex_type: str | None = None) -> Iterator[Vertex]:
        if vertex_type is None:
            yield from self._vertex_refs
            return
        refs = self._vertex_refs
        for index in self._by_type.get(vertex_type, ()):
            yield refs[index]

    def vertex_ids(self, vertex_type: str | None = None) -> list[VertexId]:
        if vertex_type is None:
            return list(self._ids)
        ids = self._ids
        return [ids[index] for index in self._by_type.get(vertex_type, ())]

    def vertex_types(self) -> list[str]:
        return [t for t, members in self._by_type.items() if members]

    def count_vertices(self, vertex_type: str | None = None) -> int:
        if vertex_type is None:
            return len(self._ids)
        return len(self._by_type.get(vertex_type, ()))

    # ------------------------------------------------------------------ edges
    def edges(self, label: str | None = None) -> Iterator[Edge]:
        if label is None:
            return iter(self._edge_list)
        return iter(self._edges_by_label.get(label, ()))

    def edge_labels(self) -> list[str]:
        return [label for label, members in self._edges_by_label.items() if members]

    def count_edges(self, label: str | None = None) -> int:
        if label is None:
            return len(self._edge_list)
        return len(self._edges_by_label.get(label, ()))

    # -------------------------------------------------------------- adjacency
    def out_edges(self, vertex_id: VertexId, label: str | None = None) -> list[Edge]:
        block = self._out if label is None else self._out_by_label.get(label)
        index = self.index_of(vertex_id)
        if block is None:
            return []
        start, end = block.slice_bounds(index)
        return block.edge_refs[start:end]

    def in_edges(self, vertex_id: VertexId, label: str | None = None) -> list[Edge]:
        block = self._in if label is None else self._in_by_label.get(label)
        index = self.index_of(vertex_id)
        if block is None:
            return []
        start, end = block.slice_bounds(index)
        return block.edge_refs[start:end]

    def successors(self, vertex_id: VertexId, label: str | None = None
                   ) -> list[VertexId]:
        block = self._out if label is None else self._out_by_label.get(label)
        try:
            index = self._index[vertex_id]
        except KeyError as exc:
            raise VertexNotFoundError(vertex_id) from exc
        if block is None:
            return []
        return block.neighbor_lists()[index]

    def predecessors(self, vertex_id: VertexId, label: str | None = None
                     ) -> list[VertexId]:
        block = self._in if label is None else self._in_by_label.get(label)
        try:
            index = self._index[vertex_id]
        except KeyError as exc:
            raise VertexNotFoundError(vertex_id) from exc
        if block is None:
            return []
        return block.neighbor_lists()[index]

    def out_degree(self, vertex_id: VertexId, label: str | None = None) -> int:
        block = self._out if label is None else self._out_by_label.get(label)
        index = self.index_of(vertex_id)
        if block is None:
            return 0
        start, end = block.slice_bounds(index)
        return end - start

    def in_degree(self, vertex_id: VertexId, label: str | None = None) -> int:
        block = self._in if label is None else self._in_by_label.get(label)
        index = self.index_of(vertex_id)
        if block is None:
            return 0
        start, end = block.slice_bounds(index)
        return end - start

    # --------------------------------------------------------------- mutation
    def _immutable(self, operation: str) -> GraphError:
        return GraphError(
            f"CSRGraphStore is an immutable snapshot; {operation} is not supported — "
            "mutate the source PropertyGraph and re-freeze"
        )

    def add_vertex(self, *args, **kwargs):
        raise self._immutable("add_vertex")

    def add_edge(self, *args, **kwargs):
        raise self._immutable("add_edge")

    def remove_vertex(self, *args, **kwargs):
        raise self._immutable("remove_vertex")

    def remove_edge(self, *args, **kwargs):
        raise self._immutable("remove_edge")

    # ------------------------------------------------------------- conversion
    def to_property_graph(self, name: str | None = None) -> PropertyGraph:
        """Thaw the snapshot back into a mutable dict-based graph."""
        graph = PropertyGraph(name=name or self.name, schema=self.schema)
        for vertex in self._vertex_refs:
            graph.add_vertex(vertex.id, vertex.type, **vertex.properties)
        for edge in self._edge_list:
            graph.add_edge(edge.source, edge.target, edge.label, **edge.properties)
        return graph

    # ------------------------------------------------------------- memory size
    def estimated_footprint(self, bytes_per_vertex: int = 64,
                            bytes_per_edge: int = 48) -> int:
        """Footprint estimate, formula-compatible with ``PropertyGraph`` so the
        view space budgets (§V-B) are representation-independent."""
        property_bytes = sum(
            32 * len(v.properties) for v in self._vertex_refs
        ) + sum(32 * len(e.properties) for e in self._edge_list)
        return (
            self.num_vertices * bytes_per_vertex
            + self.num_edges * bytes_per_edge
            + property_bytes
        )
