"""Hash-partitioned CSR shards backed by shared memory.

The single-process analytics tier runs every kernel over one monolithic
:class:`~repro.storage.csr.CSRGraphStore` on one core.  This module is the
storage half of the shard-parallel tier: :class:`GraphPartitioner` splits a
frozen ndarray-backed CSR store into ``num_shards`` **row partitions** —
shard ``s`` holds the complete adjacency rows (out, in, per-label, and
undirected) of the vertices it *owns* (``owner[v] == s``), over the shared
global interned vertex space — and packs every shard's arrays into one
:class:`multiprocessing.shared_memory.SharedMemory` arena.

Layout choices, and why:

* **Row partition over the global vertex space.**  Every shard block keeps a
  full ``V + 1`` offsets array; non-owned rows are empty.  A shard block is
  therefore a valid CSR block of the whole graph containing a subset of its
  edges, so the existing multi-block kernels
  (:func:`repro.analytics.kernels._bulk_k_hop_counts_np`,
  :func:`~repro.analytics.kernels._bfs_levels_np`) traverse the *union of all
  shard blocks* exactly as they traverse one combined block — the per-hop
  sort-dedup merge the kernels already do doubles as the cross-shard frontier
  union, and no translation between shard-local and global ids ever happens.
* **Hash ownership.**  ``owner[v]`` is a multiplicative (Fibonacci) hash of
  the interned id — deterministic across processes and runs, so any attached
  worker recomputes its owned-row set from the shared ``owner`` array alone.
* **Complete undirected rows per owner.**  Label propagation votes need every
  neighbor of a vertex in one place; the undirected block of the owner shard
  carries the vertex's whole merged neighbor list, so a synchronous LPA pass
  over owned rows is *exact*, not approximate, and shards only reconcile
  labels (not votes) between passes.
* **One arena per shard plus one common arena.**  Each arena is a single
  shared-memory segment holding many arrays at recorded byte offsets.  The
  common arena carries the ``owner`` array, the string-rank tie-break array,
  per-type boolean masks, and a writable ``labels`` buffer (the only mutable
  array — the LPA orchestrator scatters new labels into it between passes
  while every worker is idle at the pass barrier).

Lifecycle hygiene: the creating process owns the segments and must call
:meth:`GraphPartition.close` (close + unlink).  Attaching processes use
:func:`attach_partition`, which immediately detaches the segment from the
``resource_tracker`` (via ``track=False`` on Python ≥ 3.13, or an explicit
``unregister`` before that) so worker exits never unlink live segments and
never log leaked-segment warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

try:  # pragma: no cover - numpy ships in CI; the tier requires it
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:  # pragma: no cover - stdlib, but gate like multiprocessing itself
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.csr import CSRGraphStore

#: Array-key tuples inside a shard arena: ``(kind, label, part)`` where
#: ``kind`` is ``"out"``/``"in"``/``"und"``, ``label`` is an edge label or
#: ``None``, and ``part`` is ``"offsets"`` or ``"targets"``.
ArrayKey = tuple

#: Byte alignment of arrays inside an arena (keeps every ndarray view
#: naturally aligned for its dtype).
_ALIGN = 16

#: 64-bit Fibonacci-hash multiplier (golden-ratio constant).
_HASH_MULTIPLIER = 0x9E3779B97F4A7C15


def shared_memory_available() -> bool:
    """Whether this platform can back shard arenas with shared memory."""
    return _shm is not None and _np is not None


def owner_of_indices(indices, num_shards: int):
    """Shard owner per interned vertex id (deterministic multiplicative hash).

    Pure function of ``(index, num_shards)`` — every attached worker derives
    the same ownership from the same inputs, so routing decisions made by the
    orchestrator and owned-row sets derived inside workers always agree.
    """
    hashed = _np.asarray(indices, dtype=_np.uint64) * _np.uint64(_HASH_MULTIPLIER)
    hashed ^= hashed >> _np.uint64(31)
    return (hashed % _np.uint64(num_shards)).astype(_np.int16)


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach_segment(name: str):
    """Attach to an existing segment without resource-tracker registration.

    A plain attach registers the segment with the process's
    ``resource_tracker``, which unlinks it when the attaching process exits —
    tearing shared graph data out from under sibling workers and printing
    "leaked shared_memory" warnings at shutdown.  Only the *creating* process
    may own unlink responsibility.

    Python 3.13 grew ``track=False`` for exactly this; earlier versions need
    registration suppressed during the attach.  Suppression (rather than
    attach-then-unregister) matters under *fork*: forked workers share the
    parent's tracker daemon, so an unregister message from a worker would
    tear out the parent's own registration and make the parent's eventual
    unlink print a tracker ``KeyError`` traceback.
    """
    try:
        return _shm.SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _no_register(resource_name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - not hit by attach
            original_register(resource_name, rtype)

    resource_tracker.register = _no_register
    try:
        return _shm.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable description of one shared-memory arena.

    ``arrays`` maps an :data:`ArrayKey` to ``(dtype, length, byte_offset)``;
    any process holding the spec can attach the segment and rebuild every
    ndarray view without copying.
    """

    segment: str
    arrays: dict

    def views(self, buffer) -> dict:
        return {
            key: _np.ndarray((length,), dtype=_np.dtype(dtype),
                             buffer=buffer, offset=offset)
            for key, (dtype, length, offset) in self.arrays.items()
        }


@dataclass(frozen=True)
class PartitionSpec:
    """Everything a worker needs to attach the whole partition (picklable)."""

    num_shards: int
    num_vertices: int
    num_edges: int
    edge_labels: tuple
    vertex_types: tuple
    shard_arenas: tuple
    common_arena: ArenaSpec
    shard_edge_counts: tuple


class _Arena:
    """One created or attached segment plus its live ndarray views."""

    def __init__(self, segment, spec: ArenaSpec, owns: bool) -> None:
        self.segment = segment
        self.spec = spec
        self.owns = owns
        self.views: dict = spec.views(segment.buf)

    def close(self) -> None:
        # ndarray views export the segment's buffer; they must be dropped
        # before close() or the memoryview release raises BufferError.
        self.views = {}
        try:
            self.segment.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            pass
        if self.owns:
            try:
                self.segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


def _pack_arena(arrays: dict) -> _Arena:
    """Copy ``arrays`` into one freshly created shared-memory segment."""
    total = sum(_aligned(array.nbytes) for array in arrays.values())
    segment = _shm.SharedMemory(create=True, size=max(total, 1))
    spec_arrays: dict = {}
    offset = 0
    for key, array in arrays.items():
        view = _np.ndarray(array.shape, dtype=array.dtype,
                           buffer=segment.buf, offset=offset)
        view[...] = array
        spec_arrays[key] = (array.dtype.str, array.shape[0], offset)
        offset += _aligned(array.nbytes)
    arena = _Arena(segment, ArenaSpec(segment=segment.name,
                                      arrays=spec_arrays), owns=True)
    return arena


def _shard_rows(offsets, targets, row_owned, degrees):
    """The sub-CSR keeping only the rows where ``row_owned`` is True.

    Offsets stay ``V + 1``-long (non-owned rows collapse to empty slices), so
    the result is a whole-graph CSR block containing a subset of the edges.
    """
    kept = _np.where(row_owned, degrees, 0)
    shard_offsets = _np.zeros(len(offsets), dtype=_np.int64)
    _np.cumsum(kept, out=shard_offsets[1:])
    shard_offsets = shard_offsets.astype(offsets.dtype, copy=False)
    if len(degrees) and degrees.sum():
        shard_targets = targets[_np.repeat(row_owned, degrees)]
    else:
        shard_targets = targets[:0]
    return shard_offsets, shard_targets


class GraphPartition:
    """Created shard arenas plus parent-side views and bookkeeping.

    The creating process keeps this object alive for the lifetime of the
    worker pool reading it, then calls :meth:`close` exactly once; ``close``
    drops every view, closes the mappings, and unlinks the segments.
    """

    def __init__(self, spec: PartitionSpec, arenas: list[_Arena],
                 common: _Arena) -> None:
        self.spec = spec
        self._arenas = arenas
        self._common = common
        self.closed = False

    # ------------------------------------------------------------ properties
    @property
    def num_shards(self) -> int:
        return self.spec.num_shards

    @property
    def num_vertices(self) -> int:
        return self.spec.num_vertices

    @property
    def num_edges(self) -> int:
        return self.spec.num_edges

    @property
    def owner(self):
        """Shard owner per interned vertex id (int16 ndarray view)."""
        return self._common.views[("owner",)]

    @property
    def labels_buffer(self):
        """The writable int64 LPA labels array shared with every worker."""
        return self._common.views[("labels",)]

    @property
    def labels_next_buffer(self):
        """The second half of the LPA double buffer (workers write their
        disjoint owned slices here; the orchestrator flips at the barrier)."""
        return self._common.views[("labels_next",)]

    @property
    def shard_edge_counts(self) -> tuple:
        """Out-edges owned by each shard (the balance the hash achieved)."""
        return self.spec.shard_edge_counts

    def owned_indices(self, shard: int):
        """Interned ids owned by ``shard`` (derived, matching the workers)."""
        return _np.flatnonzero(self.owner == _np.int16(shard)).astype(_np.int64)

    def edge_balance_ratio(self) -> float:
        """``max(shard edges) / mean(shard edges)`` — 1.0 is a perfect cut."""
        counts = self.spec.shard_edge_counts
        if not counts or self.num_edges == 0:
            return 1.0
        mean = self.num_edges / len(counts)
        return max(counts) / mean if mean else 1.0

    def segment_names(self) -> list[str]:
        return [arena.spec.segment for arena in self._arenas] + [
            self._common.spec.segment]

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Drop views, close mappings, unlink segments.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        for arena in self._arenas:
            arena.close()
        self._common.close()

    def __del__(self):  # pragma: no cover - GC-order dependent safety net
        try:
            self.close()
        except Exception:
            pass


class GraphPartitioner:
    """Splits a frozen ndarray CSR store into shared-memory shard arenas.

    Example:
        >>> from repro.graph.property_graph import PropertyGraph
        >>> from repro.storage.csr import CSRGraphStore
        >>> g = PropertyGraph(name="tiny")
        >>> for i in range(4): _ = g.add_vertex(f"v{i}", "T")
        >>> _ = g.add_edge("v0", "v1", "E"); _ = g.add_edge("v1", "v2", "E")
        >>> partition = GraphPartitioner(num_shards=2).partition(
        ...     CSRGraphStore.from_graph(g))
        >>> partition.num_shards, partition.num_edges
        (2, 2)
        >>> partition.close()
    """

    def __init__(self, num_shards: int, include_labels: bool = True) -> None:
        if num_shards < 1:
            raise GraphError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.include_labels = include_labels

    def partition(self, store: "CSRGraphStore") -> GraphPartition:
        if not shared_memory_available():
            raise GraphError(
                "shared-memory partitioning requires numpy and "
                "multiprocessing.shared_memory")
        if not store.uses_ndarrays:
            raise GraphError(
                "shared-memory partitioning requires an ndarray-backed "
                "CSRGraphStore (numpy present at freeze time)")
        from repro.analytics.kernels import _str_rank_array

        n = store.num_vertices
        owner = owner_of_indices(_np.arange(max(n, 1), dtype=_np.int64),
                                 self.num_shards)[:n]
        labels = ([None] + sorted(store.edge_labels())
                  if self.include_labels else [None])

        # Source blocks, fetched once; undirected is built (or reused) here so
        # the workers never pay it.
        blocks: dict = {}
        for label in labels:
            for direction in ("out", "in"):
                arrays = store.csr_ndarrays(direction, label)
                if arrays is not None:
                    blocks[(direction, label)] = arrays
        blocks[("und", None)] = store.undirected_csr_arrays()

        degrees = {
            key: _np.diff(offsets.astype(_np.int64))
            for key, (offsets, _targets) in blocks.items()
        }
        arenas: list[_Arena] = []
        shard_edge_counts = []
        created: list[_Arena] = []
        try:
            for shard in range(self.num_shards):
                row_owned = owner == _np.int16(shard)
                arrays: dict = {}
                for key, (offsets, targets) in blocks.items():
                    kind, label = key
                    shard_offsets, shard_targets = _shard_rows(
                        offsets, targets, row_owned, degrees[key])
                    arrays[(kind, label, "offsets")] = shard_offsets
                    arrays[(kind, label, "targets")] = shard_targets
                shard_edge_counts.append(
                    int(arrays[("out", None, "targets")].shape[0]))
                arena = _pack_arena(arrays)
                created.append(arena)
                arenas.append(arena)

            common_arrays: dict = {
                ("owner",): owner,
                ("rank",): _str_rank_array(store),
                ("labels",): _np.arange(n, dtype=_np.int64),
                # Double buffer for synchronous LPA: workers write their
                # owned slice of labels_next during a pass (owned sets are
                # disjoint, so no write overlaps), the orchestrator flips the
                # buffers at the barrier — no label arrays ever pickle.
                ("labels_next",): _np.arange(n, dtype=_np.int64),
            }
            for vertex_type in sorted(store.vertex_types()):
                common_arrays[("mask", vertex_type)] = store.type_index_mask(
                    vertex_type)
            common = _pack_arena(common_arrays)
            created.append(common)
        except Exception:
            for arena in created:
                arena.close()
            raise

        spec = PartitionSpec(
            num_shards=self.num_shards,
            num_vertices=n,
            num_edges=store.num_edges,
            edge_labels=tuple(sorted(store.edge_labels())),
            vertex_types=tuple(sorted(store.vertex_types())),
            shard_arenas=tuple(arena.spec for arena in arenas),
            common_arena=common.spec,
            shard_edge_counts=tuple(shard_edge_counts),
        )
        return GraphPartition(spec, arenas, common)


class AttachedPartition:
    """A worker's zero-copy window onto every shard arena.

    Workers attach **all** shards once at startup: the row partition means
    any multi-hop traversal crosses ownership boundaries every hop, so the
    kernels gather from the union of shard blocks (each gather of a non-owned
    row is an empty slice).  The per-worker *own* shard only matters for the
    operations that split work by ownership — LPA votes and degree sweeps.
    """

    def __init__(self, spec: PartitionSpec, shard_index: int) -> None:
        if _np is None or _shm is None:
            raise GraphError("attaching a partition requires numpy and "
                             "multiprocessing.shared_memory")
        self.spec = spec
        self.shard_index = shard_index
        self._arenas: list[_Arena] = []
        for arena_spec in spec.shard_arenas:
            segment = _attach_segment(arena_spec.segment)
            self._arenas.append(_Arena(segment, arena_spec, owns=False))
        segment = _attach_segment(spec.common_arena.segment)
        self._common = _Arena(segment, spec.common_arena, owns=False)
        self.owner = self._common.views[("owner",)]
        self.rank = self._common.views[("rank",)]
        self.labels = self._common.views[("labels",)]
        self.labels_next = self._common.views[("labels_next",)]
        self.owned = _np.flatnonzero(
            self.owner == _np.int16(shard_index)).astype(_np.int64)
        inverse = _np.empty(spec.num_vertices, dtype=_np.int64)
        inverse[self.rank] = _np.arange(spec.num_vertices, dtype=_np.int64)
        self.inverse_rank = inverse

    # -------------------------------------------------------------- accessors
    @property
    def num_vertices(self) -> int:
        return self.spec.num_vertices

    def blocks(self, direction: str, edge_labels=None) -> list[tuple]:
        """All shards' ``(offsets, targets)`` pairs for a traversal.

        Mirrors :func:`repro.analytics.kernels._np_blocks`: ``direction`` is
        ``out``/``in``/``both``, ``edge_labels`` restricts to those labels
        (absent labels contribute nothing), and the returned list feeds the
        multi-block kernels directly.
        """
        if direction not in ("out", "in", "both"):
            raise ValueError(
                f"direction must be 'out', 'in' or 'both', got {direction!r}")
        directions = ("out", "in") if direction == "both" else (direction,)
        labels = list(edge_labels) if edge_labels is not None else [None]
        pairs: list[tuple] = []
        for one_direction in directions:
            for label in labels:
                if label is not None and label not in self.spec.edge_labels:
                    continue
                for arena in self._arenas:
                    offsets = arena.views.get((one_direction, label, "offsets"))
                    if offsets is not None:
                        pairs.append(
                            (offsets,
                             arena.views[(one_direction, label, "targets")]))
        return pairs

    def own_block(self, kind: str, label=None) -> tuple:
        """This worker's own shard block (e.g. ``("und", None)`` for LPA)."""
        views = self._arenas[self.shard_index].views
        return views[(kind, label, "offsets")], views[(kind, label, "targets")]

    def type_mask(self, vertex_type: str | None):
        """Boolean membership mask for ``vertex_type`` (zeros for an unknown
        type, matching :meth:`CSRGraphStore.type_index_mask`)."""
        if vertex_type is None:
            return None
        mask = self._common.views.get(("mask", vertex_type))
        if mask is None:
            return _np.zeros(self.spec.num_vertices, dtype=bool)
        return mask

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        for arena in self._arenas:
            arena.close()
        self._arenas = []
        self._common.close()
        self.owner = self.rank = self.labels = self.labels_next = None
        self.owned = self.inverse_rank = None


def attach_partition(spec: PartitionSpec, shard_index: int) -> AttachedPartition:
    """Attach every arena of ``spec`` from the current process."""
    return AttachedPartition(spec, shard_index)
