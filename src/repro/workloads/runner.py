"""Workload runner: evaluates Q1–Q8 over base graphs and connector views.

The Fig. 7 experiment measures total query runtime over the filtered graph vs
an equivalent 2-hop connector view (heterogeneous datasets), or the raw graph
vs the connector (homogeneous datasets).  The runner prepares both graphs for
a dataset, runs every workload query in both modes, and reports wall-clock
time, a machine-independent work proxy (result size), the speedup, and which
analytics engine served each query (index-space CSR ``kernel`` vs dict-store
``reference`` — see :mod:`repro.analytics.kernels`).

Beyond the paper's read-only setup, :func:`run_streaming_workload` models the
production serving scenario the ROADMAP targets: batches of base-graph
mutations interleaved with workload queries, with the delta-maintenance
subsystem (:class:`~repro.views.delta.MaintenanceManager`) keeping the
connector view fresh between batches instead of re-materializing it.

:func:`run_adaptive_workload` models the other serving axis: the *query mix*
drifts mid-stream (phases), and the workload-adaptive view lifecycle engine
(:mod:`repro.core.lifecycle`) re-selects, materializes, and evicts views
online — compared against freezing the initial selection forever.

:func:`run_concurrent_workload` closes the loop on the concurrent service:
reader *threads* execute against MVCC-pinned snapshots while a writer thread
commits mutation batches through the single-writer path, and every read is
differentially checked against a serial-oracle replay (a frozen
:meth:`~repro.graph.property_graph.PropertyGraph.copy` per published version,
queried through the backtracking interpreter).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analytics import kernels
from repro.datasets.registry import DatasetSpec
from repro.graph.property_graph import PropertyGraph
from repro.graph.transform import induced_subgraph_by_vertex_types
from repro.query.ast import GraphQuery
from repro.query.parser import parse_query
from repro.storage.base import GraphLike
from repro.storage.manager import StorageManager
from repro.views.catalog import MaterializedView, ViewCatalog
from repro.views.connectors import materialize_connector
from repro.views.definitions import ConnectorView
from repro.views.delta import MaintenanceManager
from repro.workloads.queries import WorkloadQuery, _result_size, workload_for_dataset


@dataclass(frozen=True)
class QueryRuntime:
    """Runtime of one query in one execution mode."""

    dataset: str
    query_id: str
    mode: str  # "filter" / "raw" / "connector"
    seconds: float
    result_size: int
    #: Which analytics implementation the query's graph dispatches to:
    #: ``"kernel"`` (index-space CSR kernels) or ``"reference"`` (dict-store
    #: oracle).  Count-only queries (Q5/Q6) answer from size counters either
    #: way; the field reports the dispatch decision, not per-query coverage.
    engine: str = "reference"


@dataclass
class WorkloadRunResult:
    """All runtimes collected for one dataset."""

    dataset: str
    runtimes: list[QueryRuntime] = field(default_factory=list)

    def runtime(self, query_id: str, mode: str) -> QueryRuntime | None:
        for record in self.runtimes:
            if record.query_id == query_id and record.mode == mode:
                return record
        return None

    def speedup(self, query_id: str) -> float | None:
        """Base-mode time divided by connector-mode time for one query."""
        base = next((r for r in self.runtimes
                     if r.query_id == query_id and r.mode != "connector"), None)
        connector = self.runtime(query_id, "connector")
        if base is None or connector is None or connector.seconds == 0:
            return None
        return base.seconds / connector.seconds


@dataclass
class PreparedDataset:
    """A dataset with its base (filter/raw) graph and 2-hop connector view."""

    spec: DatasetSpec
    base_graph: PropertyGraph
    connector_graph: PropertyGraph
    base_mode: str  # "filter" for heterogeneous, "raw" for homogeneous
    connector_definition: ConnectorView
    #: Storage manager that owns backend selection for the run (None keeps
    #: every query on the dict graphs, the pre-storage-subsystem behaviour).
    storage: StorageManager | None = None
    #: Catalog holding the materialized connector (drives delta maintenance
    #: in the streaming workload).
    catalog: ViewCatalog | None = None
    #: The materialized connector view itself.
    view: MaterializedView | None = None
    #: Path cap the connector was materialized with; forwarded to maintenance
    #: fallbacks and verification rebuilds so they stay comparable.
    max_connector_paths: int | None = None

    def graph_for(self, mode: str) -> GraphLike:
        """The representation queries in ``mode`` should run against.

        Both the base graph and the connector view are read-only for the
        duration of a workload run (Q7's community write-back only annotates
        vertex properties), so when a storage manager is attached both sides
        are served from read-optimized snapshots — keeping the base-vs-
        connector comparison on equal physical footing.
        """
        if mode == "connector":
            # Prefer the live view graph: maintenance may have replaced it.
            graph = self.view.graph if self.view is not None else self.connector_graph
        else:
            graph = self.base_graph
        if self.storage is None:
            return graph
        return self.storage.store_for(graph, workload="read_mostly")


#: Types kept by the schema-level summarizer per heterogeneous dataset (§VII-B).
_FILTER_TYPES = {
    "prov": ("Job", "File"),
    "prov-summarized": ("Job", "File"),
    "dblp": ("Author", "Article", "InProc"),
    "dblp-summarized": ("Author", "Article", "InProc"),
}


def prepare_dataset(spec: DatasetSpec, max_connector_paths: int | None = 2_000_000,
                    storage: StorageManager | None = None,
                    use_read_stores: bool = True) -> PreparedDataset:
    """Build the base graph and materialize its 2-hop connector view.

    For the heterogeneous datasets the base graph is the summarizer-filtered
    graph (jobs+files / authors+publications); for the homogeneous ones it is
    the raw graph, exactly mirroring the §VII-F setup.

    Args:
        spec: Dataset to prepare.
        max_connector_paths: Cap on paths contracted into the connector.
        storage: Storage manager to use (a default one is created when
            ``use_read_stores`` is true and none is given).
        use_read_stores: Serve workload queries from read-optimized (CSR)
            snapshots; pass False to force the dict graphs everywhere.
    """
    if storage is None and use_read_stores:
        storage = StorageManager()
    raw = spec.build()
    if spec.heterogeneous:
        keep = _FILTER_TYPES.get(spec.name, tuple(raw.vertex_types()))
        base_graph = induced_subgraph_by_vertex_types(raw, keep,
                                                      name=f"{spec.name}|filter")
        base_mode = "filter"
    else:
        base_graph = raw
        base_mode = "raw"

    connector_definition = ConnectorView(
        name=f"{spec.name}_2hop_connector",
        connector_kind="k_hop_same_vertex_type",
        source_type=spec.connector_vertex_type,
        target_type=spec.connector_vertex_type,
        k=2,
    )
    catalog = ViewCatalog(storage=storage)
    view = catalog.materialize(base_graph, connector_definition,
                               max_paths=max_connector_paths)
    return PreparedDataset(
        spec=spec,
        base_graph=base_graph,
        connector_graph=view.graph,
        base_mode=base_mode,
        connector_definition=connector_definition,
        storage=storage if use_read_stores else None,
        catalog=catalog,
        view=view,
        max_connector_paths=max_connector_paths,
    )


def run_query(query: WorkloadQuery, prepared: PreparedDataset,
              mode: str) -> QueryRuntime:
    """Run one workload query in one mode and record its runtime + engine."""
    graph = prepared.graph_for(mode)
    engine = kernels.engine_for(graph)
    runner = query.run_connector if mode == "connector" else query.run_base
    start = time.perf_counter()
    result = runner(graph)
    elapsed = time.perf_counter() - start
    return QueryRuntime(
        dataset=prepared.spec.name,
        query_id=query.query_id,
        mode=mode,
        seconds=elapsed,
        result_size=_result_size(result),
        engine=engine,
    )


def run_workload(prepared: PreparedDataset,
                 query_ids: Iterable[str] | None = None,
                 repetitions: int = 1) -> WorkloadRunResult:
    """Run the Table IV workload over a prepared dataset in both modes.

    Args:
        prepared: Output of :func:`prepare_dataset`.
        query_ids: Restrict to specific queries (e.g. ``["Q2", "Q4"]``).
        repetitions: Average wall-clock time over this many runs (the paper
            averages over 10 runs; benchmarks use fewer for speed).
    """
    wanted = set(query_ids) if query_ids is not None else None
    result = WorkloadRunResult(dataset=prepared.spec.name)
    for query in workload_for_dataset(prepared.spec.name):
        if wanted is not None and query.query_id not in wanted:
            continue
        for mode in (prepared.base_mode, "connector"):
            total = 0.0
            size = 0
            engine = "reference"
            for _ in range(max(repetitions, 1)):
                record = run_query(query, prepared, mode)
                total += record.seconds
                size = record.result_size
                engine = record.engine
            result.runtimes.append(QueryRuntime(
                dataset=prepared.spec.name,
                query_id=query.query_id,
                mode=mode,
                seconds=total / max(repetitions, 1),
                result_size=size,
                engine=engine,
            ))
    return result


# ------------------------------------------------------- pattern-query mode
@dataclass(frozen=True)
class PatternQueryRecord:
    """One Cypher workload query run through the Kaskade optimizer.

    Next to the work counters it carries the *planner decision*: the planned
    cost of the base query, the planned cost of the best view rewrite (None
    when no rewrite applied), which view actually served the query, and the
    EXPLAIN-style plan text of whatever was executed.
    """

    dataset: str
    query_id: str
    engine: str
    rows: int
    total_work: int
    seconds: float
    used_view: str | None
    base_cost: float | None
    rewrite_cost: float | None
    plan_text: str


def pattern_queries_for_dataset(dataset_name: str) -> list[tuple[str, GraphQuery]]:
    """The parsed graph-pattern (Cypher) queries of the Table IV workload."""
    parsed: list[tuple[str, GraphQuery]] = []
    for query in workload_for_dataset(dataset_name):
        if query.cypher is not None:
            parsed.append((query.query_id,
                           parse_query(query.cypher, name=query.query_id)))
    return parsed


def run_pattern_workload(prepared: PreparedDataset, engine: str = "planner",
                         use_views: bool = True,
                         max_work: int | None = None) -> list[PatternQueryRecord]:
    """Run the workload's Cypher queries through the full optimizer path.

    Unlike :func:`run_workload` (which evaluates the Q1–Q8 analytics
    callables), this drives parse → plan → base-vs-view decision → batched
    execution for every pattern query, against the prepared dataset's base
    graph with its 2-hop connector registered — and reports the planner's
    decisions next to the work counters, which is how benchmarks and serving
    dashboards see *why* a query was fast.
    """
    from repro.core.kaskade import Kaskade  # deferred: core imports workloads' peers

    kaskade = Kaskade(prepared.base_graph,
                      storage=prepared.storage or StorageManager())
    if prepared.view is not None:
        kaskade.catalog.register(prepared.view)
    records: list[PatternQueryRecord] = []
    for query_id, query in pattern_queries_for_dataset(prepared.spec.name):
        outcome = kaskade.execute(query, use_views=use_views, engine=engine,
                                  max_work=max_work)
        records.append(PatternQueryRecord(
            dataset=prepared.spec.name,
            query_id=query_id,
            engine=engine,
            rows=len(outcome.result.rows),
            total_work=outcome.result.stats.total_work,
            seconds=outcome.elapsed_seconds,
            used_view=outcome.used_view_name,
            base_cost=outcome.base_cost,
            rewrite_cost=outcome.rewrite_cost,
            plan_text=outcome.explain(),
        ))
    return records


# --------------------------------------------------------------- adaptive mode
@dataclass(frozen=True)
class AdaptiveQueryRecord:
    """One query served during an adaptive (drifting-mix) workload run."""

    dataset: str
    phase: int
    index: int
    query_name: str
    total_work: int
    used_view: str | None
    #: Whether serving this query triggered an adaptation cycle.
    adapted: bool = False


@dataclass
class AdaptiveRunResult:
    """Result of one :func:`run_adaptive_workload` pass (one arm of the A/B)."""

    dataset: str
    adaptive: bool
    records: list[AdaptiveQueryRecord] = field(default_factory=list)
    #: Reports of every adaptation cycle (empty for the frozen arm).
    adaptations: list = field(default_factory=list)
    initial_views: list[str] = field(default_factory=list)
    final_views: list[str] = field(default_factory=list)

    @property
    def total_work(self) -> int:
        """Total traversal work across every query of every phase."""
        return sum(record.total_work for record in self.records)

    def phase_work(self, phase: int) -> int:
        return sum(r.total_work for r in self.records if r.phase == phase)

    @property
    def evicted_view_names(self) -> list[str]:
        names: list[str] = []
        for report in self.adaptations:
            names.extend(report.evicted_names)
        return names

    @property
    def materialized_view_names(self) -> list[str]:
        names: list[str] = []
        for report in self.adaptations:
            names.extend(report.materialized)
        return names


def run_adaptive_workload(graph: PropertyGraph,
                          phases: Sequence[Sequence[GraphQuery]],
                          budget_edges: float,
                          adapt_every: int = 16,
                          adaptive: bool = True,
                          initial_selection: bool = True,
                          engine: str = "planner",
                          lifecycle_config=None,
                          kaskade=None) -> AdaptiveRunResult:
    """Serve a drifting query mix, optionally with the adaptive lifecycle on.

    Both arms of the frozen-vs-adaptive comparison start identically: view
    selection runs once over the *first* phase's distinct queries under the
    space budget.  The frozen arm (``adaptive=False``) then serves every
    phase from that initial catalog; the adaptive arm re-selects every
    ``adapt_every`` queries from the decayed workload log, materializing
    newly winning views and evicting the rest.

    Args:
        graph: Base graph to serve.
        phases: The query stream, one sequence per phase, executed in order —
            the mix "flips" at each phase boundary.
        budget_edges: Space budget (estimated edges) for selection.
        adapt_every: Queries between adaptation cycles (adaptive arm only).
        adaptive: Enable the lifecycle engine, or freeze the initial catalog.
        initial_selection: Run the offline §V-B selection on phase 0's
            distinct queries before serving (both arms).
        engine: Execution engine forwarded to :meth:`Kaskade.execute`.
        lifecycle_config: Optional :class:`~repro.core.lifecycle.LifecycleConfig`
            overriding ``budget_edges``/``adapt_every``.
        kaskade: Pre-built :class:`~repro.core.kaskade.Kaskade` to reuse
            (a fresh one is created when omitted).
    """
    from repro.core.kaskade import Kaskade  # deferred: core imports workloads' peers

    if kaskade is None:
        kaskade = Kaskade(graph, storage=StorageManager())
    if adaptive:
        # Enable before the initial selection so the calibrator observes the
        # actual sizes of the initially materialized views.
        if lifecycle_config is not None:
            kaskade.enable_adaptive(config=lifecycle_config)
        else:
            kaskade.enable_adaptive(budget_edges, adapt_every=adapt_every)
    result = AdaptiveRunResult(dataset=graph.name, adaptive=adaptive)
    if initial_selection and phases:
        distinct: dict[str, GraphQuery] = {}
        for query in phases[0]:
            distinct.setdefault(query.structural_signature(), query)
        report = kaskade.select_views(list(distinct.values()), budget_edges)
        result.initial_views = report.view_names
    for phase_index, phase in enumerate(phases):
        for index, query in enumerate(phase):
            outcome = kaskade.execute(query, engine=engine)
            if outcome.adaptation is not None:
                result.adaptations.append(outcome.adaptation)
            result.records.append(AdaptiveQueryRecord(
                dataset=graph.name,
                phase=phase_index,
                index=index,
                query_name=query.name or query.structural_signature(),
                total_work=outcome.result.stats.total_work,
                used_view=outcome.used_view_name,
                adapted=outcome.adaptation is not None,
            ))
    result.final_views = [view.definition.name for view in kaskade.catalog]
    return result


# -------------------------------------------------------------- streaming mode
@dataclass
class StreamingBatchRecord:
    """One mutation batch: what changed, how long maintenance took, queries run."""

    batch_index: int
    edges_added: int
    edges_removed: int
    refresh_seconds: float
    view_edges_after: int
    query_runtimes: list[QueryRuntime] = field(default_factory=list)


@dataclass
class StreamingRunResult:
    """Result of a streaming-update workload run."""

    dataset: str
    batches: list[StreamingBatchRecord] = field(default_factory=list)
    #: Whether the maintained view's edge set matched a from-scratch
    #: re-materialization after the final batch (None when not verified).
    final_view_consistent: bool | None = None

    @property
    def total_refresh_seconds(self) -> float:
        return sum(batch.refresh_seconds for batch in self.batches)

    @property
    def total_mutations(self) -> int:
        return sum(batch.edges_added + batch.edges_removed for batch in self.batches)


def generate_edge_mutations(graph: PropertyGraph, count: int,
                            rng: random.Random,
                            remove_fraction: float = 0.3) -> tuple[int, int]:
    """Apply ``count`` random schema-respecting edge mutations to ``graph``.

    Removals pick a random existing edge; insertions clone the shape of a
    random existing edge (same label, endpoint types drawn from the same
    types), so the stream stays within the dataset's schema — mirroring
    "new jobs write new files" style production traffic.

    Returns:
        (edges_added, edges_removed).
    """
    added = removed = 0
    # One edge pool per call keeps generation O(E + count) instead of
    # re-listing every edge per mutation; popped entries guarantee unique
    # removal victims, and templates only need label + endpoint types.
    pool = list(graph.edges())
    type_ids: dict[str, list] = {}
    for _ in range(count):
        if not pool:
            pool = list(graph.edges())
            if not pool:
                break
        if rng.random() < remove_fraction:
            index = rng.randrange(len(pool))
            pool[index], pool[-1] = pool[-1], pool[index]
            victim = pool.pop()
            graph.remove_edge(victim.id)
            removed += 1
            continue
        template = rng.choice(pool)
        source_type = graph.vertex(template.source).type
        target_type = graph.vertex(template.target).type
        for vertex_type in (source_type, target_type):
            if vertex_type not in type_ids:
                type_ids[vertex_type] = graph.vertex_ids(vertex_type)
        source = rng.choice(type_ids[source_type])
        target = rng.choice(type_ids[target_type])
        if source == target:
            continue
        graph.add_edge(source, target, template.label)
        added += 1
    return added, removed


def run_streaming_workload(prepared: PreparedDataset,
                           num_batches: int = 4,
                           mutations_per_batch: int = 40,
                           query_ids: Iterable[str] | None = None,
                           seed: int = 17,
                           remove_fraction: float = 0.3,
                           verify: bool = True) -> StreamingRunResult:
    """Interleave base-graph mutation batches with connector-mode queries.

    Each round applies a batch of random edge mutations to the base graph,
    refreshes every catalog view through the delta-maintenance subsystem, and
    runs the workload queries in connector mode against the freshly
    maintained (and re-frozen) view — the serving pattern of a system under
    heavy mutating traffic.

    Args:
        prepared: Output of :func:`prepare_dataset` (must carry its catalog).
        num_batches: Number of mutation/query rounds.
        mutations_per_batch: Edge mutations applied per round.
        query_ids: Restrict to specific queries (e.g. ``["Q2"]``).
        seed: Mutation-stream RNG seed.
        remove_fraction: Fraction of mutations that delete an edge.
        verify: After the final batch, re-materialize the connector from
            scratch and record whether the maintained edge set matches.
    """
    if prepared.catalog is None or prepared.view is None:
        raise ValueError("run_streaming_workload needs a PreparedDataset with its catalog")
    rng = random.Random(seed)
    manager = MaintenanceManager(prepared.base_graph, prepared.catalog,
                                 storage=prepared.storage,
                                 max_paths=prepared.max_connector_paths)
    wanted = set(query_ids) if query_ids is not None else None
    queries = [query for query in workload_for_dataset(prepared.spec.name)
               if wanted is None or query.query_id in wanted]
    result = StreamingRunResult(dataset=prepared.spec.name)

    for batch_index in range(num_batches):
        added, removed = generate_edge_mutations(
            prepared.base_graph, mutations_per_batch, rng,
            remove_fraction=remove_fraction)
        refresh = manager.refresh()
        record = StreamingBatchRecord(
            batch_index=batch_index,
            edges_added=added,
            edges_removed=removed,
            refresh_seconds=refresh.elapsed_seconds,
            view_edges_after=prepared.view.graph.num_edges,
        )
        for query in queries:
            record.query_runtimes.append(run_query(query, prepared, "connector"))
        result.batches.append(record)

    if verify:
        fresh = materialize_connector(prepared.base_graph,
                                      prepared.connector_definition,
                                      max_paths=prepared.max_connector_paths)
        maintained_edges = {(e.source, e.target)
                            for e in prepared.view.graph.edges()}
        fresh_edges = {(e.source, e.target) for e in fresh.edges()}
        result.final_view_consistent = maintained_edges == fresh_edges
    return result


# -------------------------------------------------------------- concurrent mode
@dataclass(frozen=True)
class ConcurrentReadRecord:
    """One snapshot-pinned read performed by a reader thread."""

    reader: int
    query_name: str
    #: Snapshot version the read executed against (``executed_version``).
    version: int
    rows: int
    seconds: float
    used_view: str | None = None


@dataclass
class ConcurrentRunResult:
    """Result of one :func:`run_concurrent_workload` pass."""

    dataset: str
    reads: list[ConcurrentReadRecord] = field(default_factory=list)
    #: Versions published by the writer, in commit order (head first entry is
    #: the initial version that existed before the writer started).
    published_versions: list[int] = field(default_factory=list)
    #: Human-readable descriptions of every isolation violation found.  Empty
    #: means every read saw a published version and matched the serial oracle.
    isolation_violations: list[str] = field(default_factory=list)
    #: Reads that were differentially replayed against the oracle.
    oracle_checked: int = 0
    commit_errors: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.isolation_violations

    @property
    def versions_observed(self) -> list[int]:
        return sorted({record.version for record in self.reads})


def generate_mutation_ops(graph: PropertyGraph, count: int, rng: random.Random,
                          remove_fraction: float = 0.3) -> list[dict]:
    """Build ``count`` schema-respecting edge-mutation *op dicts*.

    The service-level twin of :func:`generate_edge_mutations`: instead of
    mutating ``graph`` directly it emits ``{"op": ...}`` dicts for
    :meth:`~repro.service.mvcc.SnapshotManager.commit`, generated against the
    graph's current state (call it from the writer thread, between commits).
    """
    ops: list[dict] = []
    pool = list(graph.edges())
    type_ids: dict[str, list] = {}
    for _ in range(count):
        if not pool:
            break
        if rng.random() < remove_fraction:
            index = rng.randrange(len(pool))
            pool[index], pool[-1] = pool[-1], pool[index]
            victim = pool.pop()
            ops.append({"op": "remove_edge", "edge_id": victim.id})
            continue
        template = rng.choice(pool)
        source_type = graph.vertex(template.source).type
        target_type = graph.vertex(template.target).type
        for vertex_type in (source_type, target_type):
            if vertex_type not in type_ids:
                type_ids[vertex_type] = graph.vertex_ids(vertex_type)
        source = rng.choice(type_ids[source_type])
        target = rng.choice(type_ids[target_type])
        if source == target:
            continue
        ops.append({"op": "add_edge", "source": source, "target": target,
                    "label": template.label})
    return ops


def _normalize_rows(rows: Sequence) -> list[str]:
    """Order-insensitive, hash-free row multiset (rows may hold dicts)."""
    return sorted(repr(row) for row in rows)


def run_concurrent_workload(graph: PropertyGraph,
                            queries: Sequence[GraphQuery],
                            num_readers: int = 4,
                            num_batches: int = 6,
                            mutations_per_batch: int = 20,
                            reads_per_reader: int = 12,
                            seed: int = 17,
                            remove_fraction: float = 0.3,
                            use_views: bool = False,
                            max_work: int | None = None,
                            verify_oracle: bool = True,
                            kaskade=None) -> ConcurrentRunResult:
    """Readers on pinned snapshots vs a committing writer, oracle-checked.

    One writer thread pushes ``num_batches`` mutation batches through
    :meth:`~repro.service.mvcc.SnapshotManager.commit` while ``num_readers``
    threads concurrently pin snapshots and execute queries against the frozen
    stores.  Snapshot isolation is then asserted two ways:

    1. **Published versions only** — every read's ``executed_version`` must be
       one of the versions the writer actually published (or the initial
       head); a reader can never observe a half-applied batch.
    2. **Serial-oracle equality** — the writer snapshots a
       :meth:`~repro.graph.property_graph.PropertyGraph.copy` of the base
       graph at every published version; afterwards each distinct
       ``(version, query)`` read is replayed serially through the
       backtracking interpreter on that copy, and the row multisets must
       match exactly.

    Violations are *collected* (not raised) in
    :attr:`ConcurrentRunResult.isolation_violations` so tests can report all
    of them at once.

    Args:
        graph: Base graph to serve (mutated by the writer's commits).
        queries: Parsed pattern queries the readers draw from.
        use_views: Let snapshot reads use captured view rewrites (needs a
            ``kaskade`` with a populated catalog to have any effect).
        verify_oracle: Run the serial interpreter replay (pass False for
            pure throughput runs — e.g. benchmarks).
        kaskade: Pre-built :class:`~repro.core.kaskade.Kaskade` to reuse.
    """
    from repro.core.kaskade import Kaskade  # deferred: core imports workloads' peers
    from repro.query.executor import QueryExecutor
    from repro.service.mvcc import SnapshotManager

    if not queries:
        raise ValueError("run_concurrent_workload needs at least one query")
    if kaskade is None:
        kaskade = Kaskade(graph, storage=StorageManager())
    manager = SnapshotManager(kaskade, max_retained=max(4, num_batches + 2))
    result = ConcurrentRunResult(dataset=graph.name)
    result.published_versions.append(manager.head_version())

    # Serial oracle: a frozen deep copy of the base graph per published
    # version.  Only the writer thread touches it (and the live graph).
    oracle: dict[int, PropertyGraph] = {}
    if verify_oracle:
        oracle[manager.head_version()] = graph.copy()
    writer_rng = random.Random(seed)
    reads_lock = threading.Lock()
    stop = threading.Event()

    def writer() -> None:
        try:
            for _ in range(num_batches):
                ops = generate_mutation_ops(graph, mutations_per_batch,
                                            writer_rng,
                                            remove_fraction=remove_fraction)
                commit = manager.commit(ops)
                result.commit_errors.extend(commit.errors)
                result.published_versions.append(commit.version)
                if verify_oracle and commit.version not in oracle:
                    oracle[commit.version] = graph.copy()
                time.sleep(0.001)  # let readers interleave between batches
        finally:
            stop.set()

    def reader(reader_id: int) -> None:
        rng = random.Random(seed + 1000 + reader_id)
        for _ in range(reads_per_reader):
            query = rng.choice(list(queries))
            start = time.perf_counter()
            outcome = manager.execute(query, max_work=max_work,
                                      use_views=use_views)
            record = ConcurrentReadRecord(
                reader=reader_id,
                query_name=query.name or query.structural_signature(),
                version=outcome.executed_version,
                rows=len(outcome.result.rows),
                seconds=time.perf_counter() - start,
                used_view=outcome.used_view_name,
            )
            with reads_lock:
                result.reads.append(record)
                # Keep the *observed rows* for the differential check without
                # holding them on the frozen record (they can be large).
                _observed.setdefault((record.version, record.query_name),
                                     _normalize_rows(outcome.result.rows))
            if stop.is_set() and rng.random() < 0.25:
                break  # some readers finish early; others outlive the writer

    _observed: dict[tuple[int, str], list[str]] = {}
    query_by_name = {(q.name or q.structural_signature()): q for q in queries}
    threads = [threading.Thread(target=writer, name="concurrent-writer")]
    threads.extend(threading.Thread(target=reader, args=(i,),
                                    name=f"concurrent-reader-{i}")
                   for i in range(num_readers))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    published = set(result.published_versions)
    for record in result.reads:
        if record.version not in published:
            result.isolation_violations.append(
                f"reader {record.reader} observed unpublished version "
                f"{record.version} (published: {sorted(published)})")

    if verify_oracle:
        for (version, query_name), observed in sorted(_observed.items()):
            frozen = oracle.get(version)
            query = query_by_name.get(query_name)
            if frozen is None or query is None:
                continue  # unpublished version: already reported above
            replay = QueryExecutor(frozen, engine="interpreter").execute(query)
            expected = _normalize_rows(replay.rows)
            result.oracle_checked += 1
            if observed != expected:
                result.isolation_violations.append(
                    f"rows diverge from serial oracle at version {version} "
                    f"for {query_name}: {len(observed)} observed vs "
                    f"{len(expected)} expected")
    return result


# --------------------------------------------------------- crash-recovery
@dataclass
class CrashRecoveryResult:
    """Outcome of one crash-recovery torture run.

    The invariant the differential asserts: after a crash at any fault
    point, the recovered graph is **exactly** the acknowledged prefix —
    identical fingerprint (vertices, edges *with ids*, properties),
    identical version counter, identical interpreter rows.  No acknowledged
    commit lost, no unacknowledged commit resurrected.
    """

    fault_point: str | None
    crashed: bool = False
    attempted_batches: int = 0
    acknowledged_batches: int = 0
    failed_batches: int = 0
    recovered_version: int = 0
    oracle_version: int = 0
    recovery: object | None = None
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_crash_recovery_workload(graph: PropertyGraph, *, root,
                                fault_point: str | None = None,
                                fault_mode: str = "crash",
                                crash_after: int = 0,
                                num_batches: int = 12,
                                mutations_per_batch: int = 6,
                                seed: int = 17,
                                checkpoint_every: int = 4,
                                segment_bytes: int = 4096,
                                remove_fraction: float = 0.3,
                                queries: Sequence[GraphQuery] | None = None
                                ) -> CrashRecoveryResult:
    """Drive durable commits into a crash, recover, and differentially verify.

    Mutation batches go through the full service stack
    (:meth:`~repro.service.server.GraphService.handle` — so the
    ``server.handle`` fault point participates), with one fault armed at
    ``fault_point`` (hit number ``crash_after``).  A serial **oracle** graph
    — an id-preserving clone of the seed — applies exactly the batches the
    service *acknowledged* (HTTP 200).  On crash the harness simulates power
    loss (unsynced WAL bytes vanish), recovers in a "new process", and
    asserts oracle equality three ways: graph fingerprint (edge ids
    included), version counter, and interpreter rows for ``queries``.

    Args:
        graph: Seed graph; mutated in place by the live service.
        root: Durability root directory (WAL + checkpoints).
        fault_point: One of :data:`~repro.testing.faults.FAULT_POINTS`, or
            None for a fault-free run ending in an abrupt power cut.
        fault_mode: Plan mode (``"crash"``, ``"raise"``, ``"torn_write"``).
        crash_after: Hits of the point to let pass before firing.
        checkpoint_every: Commits between checkpoints — kept small so the
            sweep exercises checkpoint boundaries, not just WAL replay.
        segment_bytes: WAL rollover threshold — small, to cross segments.
        queries: Parsed queries for the interpreter row differential.
    """
    from repro.core.kaskade import Kaskade  # deferred: core imports workloads' peers
    from repro.durability import DurabilityEngine, apply_op, recover_kaskade
    from repro.graph.io import graph_fingerprint, graph_from_dict, graph_to_dict
    from repro.query.executor import QueryExecutor
    from repro.service.server import GraphService
    from repro.testing.faults import FaultInjector, InjectedCrash

    # Id-preserving clone: remove_edge-by-id ops must mean the same edge on
    # both sides, which PropertyGraph.copy (it renumbers ids) cannot give.
    oracle = graph_from_dict(graph_to_dict(graph, include_ids=True))
    faults = FaultInjector(seed=seed)
    engine = DurabilityEngine(root, faults=faults,
                              checkpoint_every=checkpoint_every,
                              segment_bytes=segment_bytes)
    service = GraphService(Kaskade(graph), durability=engine, faults=faults)
    # Arm only after boot: the baseline checkpoint is setup, not traffic.
    if fault_point is not None:
        faults.plan(fault_point, mode=fault_mode, after=crash_after)
    result = CrashRecoveryResult(fault_point=fault_point)
    rng = random.Random(seed + 1)
    vertex_type = next(iter(sorted(graph.vertex_types())), "Vertex")
    for batch in range(num_batches):
        ops = generate_mutation_ops(oracle, mutations_per_batch, rng,
                                    remove_fraction=remove_fraction)
        ops.append({"op": "add_vertex", "id": f"crash_v{batch}",
                    "type": vertex_type})
        result.attempted_batches += 1
        try:
            response = service.handle("POST", "/mutate", {"ops": ops})
        except InjectedCrash:
            result.crashed = True
            break
        if response.status == 200:
            # Acknowledged: the durable marker fsynced.  Mirror the batch
            # into the oracle with the same per-op error tolerance.
            result.acknowledged_batches += 1
            for op in ops:
                try:
                    apply_op(oracle, op)
                except Exception:  # noqa: BLE001 - mirrors commit semantics
                    pass
        else:
            # 500 with an error id (injected raise): the service survived
            # and nothing was applied or acknowledged.
            result.failed_batches += 1
    # Power cut — abrupt even when no fault fired: every run must recover
    # from exactly its fsynced bytes.
    engine.simulate_power_loss()
    recovered, _engine, recovery = recover_kaskade(root)
    result.recovery = recovery
    result.recovered_version = recovered.graph.version
    result.oracle_version = oracle.version
    if recovered.graph.version != oracle.version:
        result.violations.append(
            f"recovered version {recovered.graph.version} != acknowledged "
            f"oracle version {oracle.version}")
    if graph_fingerprint(recovered.graph) != graph_fingerprint(oracle):
        result.violations.append(
            "recovered graph fingerprint diverges from the "
            "acknowledged-prefix oracle")
    for query in queries or ():
        expected = _normalize_rows(
            QueryExecutor(oracle, engine="interpreter").execute(query).rows)
        actual = _normalize_rows(
            QueryExecutor(recovered.graph,
                          engine="interpreter").execute(query).rows)
        if expected != actual:
            result.violations.append(
                f"interpreter rows diverge after recovery for "
                f"{query.name or query.structural_signature()}: "
                f"{len(actual)} recovered vs {len(expected)} oracle")
    return result
