"""The Q1–Q8 evaluation workload (Table IV).

Each workload query has two implementations:

* ``run_base`` — evaluated over the filtered (summarized) graph for the
  heterogeneous datasets, or the raw graph for the homogeneous ones, exactly
  as §VII-F describes;
* ``run_connector`` — the equivalent rewriting over a 2-hop connector view:
  Q1–Q4 traverse half the number of hops, Q7/Q8 run roughly half as many
  label-propagation passes, and Q5/Q6 are unchanged (they just count).

The Cypher text of the pattern-matching queries (Q1–Q3) is also exposed so
that the Kaskade optimizer path (parse → enumerate → select → rewrite) can be
exercised on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.analytics.community import label_propagation, largest_community
from repro.analytics.metrics import edge_count, vertex_count
from repro.analytics.paths import path_lengths
from repro.analytics.traversal import blast_radius, bulk_k_hop_counts
from repro.storage.base import GraphLike

#: Hop bound used by the blast radius query (Listing 1: jobs up to ~10 hops away).
BLAST_RADIUS_HOPS = 10
#: Hop bound used by the lineage queries Q2-Q4 (§VII-C: capped at 4 hops).
LINEAGE_HOPS = 4
#: Label propagation passes for Q7 (§VII-C: 25 passes).
LABEL_PROPAGATION_PASSES = 25


@dataclass(frozen=True)
class WorkloadQuery:
    """One query of Table IV.

    Attributes:
        query_id: Identifier ("Q1" … "Q8").
        name: Human-readable name from Table IV.
        operation: "Retrieval" or "Update".
        result_kind: What the query returns (subgraph, set of vertices, …).
        run_base: Callable evaluating the query on the base (filter/raw) graph.
        run_connector: Callable evaluating the equivalent rewriting on a 2-hop
            connector graph.
        cypher: Optional Cypher text of the query's graph pattern (Q1–Q3).
    """

    query_id: str
    name: str
    operation: str
    result_kind: str
    run_base: Callable[[GraphLike], Any]
    run_connector: Callable[[GraphLike], Any]
    cypher: str | None = None


def _half_hops(hops: int) -> int:
    """Hop bound for the 2-hop-connector rewriting of a ``hops``-hop traversal."""
    return max(1, hops // 2)


def _result_size(value: Any) -> int:
    """A scalar 'result size' for reporting, tolerant of different result shapes."""
    if value is None:
        return 0
    if isinstance(value, (int, float)):
        return 1
    if isinstance(value, dict):
        return len(value)
    if hasattr(value, "__len__"):
        return len(value)
    return 1


def build_workload(anchor_type: str | None, heterogeneous: bool,
                   blast_radius_supported: bool = True) -> list[WorkloadQuery]:
    """Build the Table IV workload for a dataset.

    Args:
        anchor_type: Vertex type queries anchor on ("Job" for prov, "Author"
            for dblp, None/"Vertex" for homogeneous networks — §VII-C notes
            that on dblp the source type is "author" and on homogeneous
            networks all vertices are included).
        heterogeneous: Whether the dataset has multiple vertex types.
        blast_radius_supported: Q1 is only defined for the provenance graph.
    """
    anchors_kwargs = {"vertex_type": anchor_type} if heterogeneous else {"vertex_type": None}
    queries: list[WorkloadQuery] = []

    if blast_radius_supported:
        queries.append(WorkloadQuery(
            query_id="Q1",
            name="Job Blast Radius",
            operation="Retrieval",
            result_kind="Subgraph",
            run_base=lambda g: blast_radius(g, max_hops=BLAST_RADIUS_HOPS),
            run_connector=lambda g: blast_radius(
                g, max_hops=_half_hops(BLAST_RADIUS_HOPS)),
            cypher=(
                "MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File), "
                "(q_f1:File)-[r*0..8]->(q_f2:File), "
                "(q_f2:File)-[:IS_READ_BY]->(q_j2:Job) "
                "RETURN q_j1 AS A, q_j2 AS B"
            ),
        ))

    # Q2/Q3 anchor on every vertex (of the anchor type): one bulk sweep over
    # shared kernel buffers instead of an independent traversal per anchor.
    bulk_kwargs = {
        "anchor_type": anchor_type if heterogeneous else None,
        "vertex_type": anchors_kwargs["vertex_type"],
    }

    def run_ancestors(graph: GraphLike, hops: int) -> dict[Any, int]:
        return bulk_k_hop_counts(graph, hops, direction="in", **bulk_kwargs)

    def run_descendants(graph: GraphLike, hops: int) -> dict[Any, int]:
        return bulk_k_hop_counts(graph, hops, direction="out", **bulk_kwargs)

    def run_path_lengths(graph: GraphLike, hops: int) -> dict[Any, int]:
        anchor_ids = graph.vertex_ids(anchor_type) if heterogeneous else graph.vertex_ids()
        return {vid: len(path_lengths(graph, vid, max_hops=hops)) for vid in anchor_ids}

    queries.append(WorkloadQuery(
        query_id="Q2",
        name="Ancestors",
        operation="Retrieval",
        result_kind="Set of vertices",
        run_base=lambda g: run_ancestors(g, LINEAGE_HOPS),
        run_connector=lambda g: run_ancestors(g, _half_hops(LINEAGE_HOPS)),
        cypher=(
            f"MATCH (x{':' + anchor_type if anchor_type else ''})"
            f"<-[*1..{LINEAGE_HOPS}]-(y) RETURN x, y"
        ),
    ))
    queries.append(WorkloadQuery(
        query_id="Q3",
        name="Descendants",
        operation="Retrieval",
        result_kind="Set of vertices",
        run_base=lambda g: run_descendants(g, LINEAGE_HOPS),
        run_connector=lambda g: run_descendants(g, _half_hops(LINEAGE_HOPS)),
        cypher=(
            f"MATCH (x{':' + anchor_type if anchor_type else ''})"
            f"-[*1..{LINEAGE_HOPS}]->(y) RETURN x, y"
        ),
    ))
    queries.append(WorkloadQuery(
        query_id="Q4",
        name="Path lengths",
        operation="Retrieval",
        result_kind="Bag of scalars",
        run_base=lambda g: run_path_lengths(g, LINEAGE_HOPS),
        run_connector=lambda g: run_path_lengths(g, _half_hops(LINEAGE_HOPS)),
    ))
    queries.append(WorkloadQuery(
        query_id="Q5",
        name="Edge Count",
        operation="Retrieval",
        result_kind="Single scalar",
        run_base=edge_count,
        run_connector=edge_count,
    ))
    queries.append(WorkloadQuery(
        query_id="Q6",
        name="Vertex Count",
        operation="Retrieval",
        result_kind="Single scalar",
        run_base=vertex_count,
        run_connector=vertex_count,
    ))
    queries.append(WorkloadQuery(
        query_id="Q7",
        name="Community Detection",
        operation="Update",
        result_kind="N/A",
        run_base=lambda g: label_propagation(g, passes=LABEL_PROPAGATION_PASSES),
        run_connector=lambda g: label_propagation(
            g, passes=_half_hops(LABEL_PROPAGATION_PASSES)),
    ))
    queries.append(WorkloadQuery(
        query_id="Q8",
        name="Largest Community",
        operation="Retrieval",
        result_kind="Subgraph",
        run_base=lambda g: largest_community(
            g, labels=label_propagation(g, passes=LABEL_PROPAGATION_PASSES,
                                        write_property=None),
            by_vertex_type=anchor_type if heterogeneous else None),
        run_connector=lambda g: largest_community(
            g, labels=label_propagation(g, passes=_half_hops(LABEL_PROPAGATION_PASSES),
                                        write_property=None),
            by_vertex_type=anchor_type if heterogeneous else None),
    ))
    return queries


def workload_for_dataset(dataset_name: str) -> list[WorkloadQuery]:
    """The Table IV workload configured for one of the evaluation datasets."""
    if dataset_name.startswith("prov"):
        return build_workload("Job", heterogeneous=True, blast_radius_supported=True)
    if dataset_name.startswith("dblp"):
        return build_workload("Author", heterogeneous=True, blast_radius_supported=False)
    return build_workload(None, heterogeneous=False, blast_radius_supported=False)
