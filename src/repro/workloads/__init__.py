"""The evaluation query workload (Table IV) and its runner."""

from repro.workloads.queries import (
    BLAST_RADIUS_HOPS,
    LABEL_PROPAGATION_PASSES,
    LINEAGE_HOPS,
    WorkloadQuery,
    build_workload,
    workload_for_dataset,
)
from repro.workloads.runner import (
    PatternQueryRecord,
    PreparedDataset,
    QueryRuntime,
    StreamingBatchRecord,
    StreamingRunResult,
    WorkloadRunResult,
    generate_edge_mutations,
    pattern_queries_for_dataset,
    prepare_dataset,
    run_pattern_workload,
    run_query,
    run_streaming_workload,
    run_workload,
)

__all__ = [
    "BLAST_RADIUS_HOPS",
    "LABEL_PROPAGATION_PASSES",
    "LINEAGE_HOPS",
    "PatternQueryRecord",
    "PreparedDataset",
    "QueryRuntime",
    "StreamingBatchRecord",
    "StreamingRunResult",
    "WorkloadRunResult",
    "WorkloadQuery",
    "build_workload",
    "generate_edge_mutations",
    "pattern_queries_for_dataset",
    "prepare_dataset",
    "run_pattern_workload",
    "run_query",
    "run_streaming_workload",
    "run_workload",
    "workload_for_dataset",
]
