"""Graph view definitions.

A *graph view* over a graph G is a graph query whose result is itself a graph
(§III-C).  Kaskade identifies two view classes sufficient for its use cases:

* **Connectors** (§VI-A, Table I): each edge of the view contracts a directed
  path between two *target vertices* of the original graph.  Specializations
  differ in how target vertices are chosen — same-vertex-type, k-hop,
  same-edge-type, and source-to-sink connectors.
* **Summarizers** (§VI-B, Table II): the view keeps a subset of the original
  vertices/edges (inclusion/removal filters) or groups them into super
  vertices/edges (aggregators).

These dataclasses are *declarative specifications*; materialization lives in
:mod:`repro.views.connectors` and :mod:`repro.views.summarizers`.  Each
definition exposes a stable :meth:`~ViewDefinition.signature` used as the key
in the view catalog, and a Cypher-ish description used for reporting (the role
the Prolog→Cypher translation plays in §V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import ViewError

#: Connector flavours (Table I).
CONNECTOR_KINDS = (
    "k_hop",
    "same_vertex_type",
    "k_hop_same_vertex_type",
    "same_edge_type",
    "source_to_sink",
)

#: Summarizer flavours (Table II).
SUMMARIZER_KINDS = (
    "vertex_removal",
    "edge_removal",
    "vertex_inclusion",
    "edge_inclusion",
    "vertex_aggregator",
    "edge_aggregator",
    "subgraph_aggregator",
)


@dataclass(frozen=True)
class ViewDefinition:
    """Base class for view specifications."""

    name: str

    @property
    def kind(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def signature(self) -> tuple:
        """A hashable identity used to deduplicate and look up views."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConnectorView(ViewDefinition):
    """A connector view specification.

    Attributes:
        name: View name (e.g. ``"job_to_job_2hop"``).
        connector_kind: One of :data:`CONNECTOR_KINDS`.
        source_type: Vertex type of path sources (None = any).
        target_type: Vertex type of path targets (None = any).
        k: Exact number of hops contracted per edge (None = variable length).
        max_hops: Bound on path length for variable-length connectors.
        edge_label: Restriction on which edge labels paths may traverse
            (used by the same-edge-type connector).
        output_label: Label given to the contracted edges in the view.
    """

    connector_kind: str = "k_hop"
    source_type: str | None = None
    target_type: str | None = None
    k: int | None = None
    max_hops: int = 8
    edge_label: str | None = None
    output_label: str = ""

    def __post_init__(self) -> None:
        if self.connector_kind not in CONNECTOR_KINDS:
            raise ViewError(f"unknown connector kind {self.connector_kind!r}")
        if self.connector_kind in ("k_hop", "k_hop_same_vertex_type") and self.k is None:
            raise ViewError(f"{self.connector_kind} connector requires k")
        if self.k is not None and self.k < 1:
            raise ViewError(f"k must be >= 1, got {self.k}")
        if self.connector_kind in ("same_vertex_type", "k_hop_same_vertex_type"):
            if self.source_type is None:
                raise ViewError(f"{self.connector_kind} connector requires a vertex type")
        if not self.output_label:
            object.__setattr__(self, "output_label", self._default_output_label())

    def _default_output_label(self) -> str:
        source = self.source_type or "ANY"
        target = self.target_type or self.source_type or "ANY"
        hops = f"{self.k}_HOP" if self.k is not None else "PATH"
        return f"{hops}-{source.upper()}_TO_{target.upper()}"

    @property
    def kind(self) -> str:
        return "connector"

    def signature(self) -> tuple:
        return (
            "connector",
            self.connector_kind,
            self.source_type,
            self.target_type,
            self.k,
            self.max_hops,
            self.edge_label,
        )

    def describe(self) -> str:
        if self.connector_kind == "source_to_sink":
            return f"connector[{self.name}]: source-to-sink paths (<= {self.max_hops} hops)"
        source = self.source_type or "*"
        target = self.target_type or self.source_type or "*"
        hops = f"{self.k}-hop" if self.k is not None else f"<= {self.max_hops}-hop"
        label = f" via :{self.edge_label}" if self.edge_label else ""
        return f"connector[{self.name}]: {hops} paths {source} -> {target}{label}"

    def to_cypher(self) -> str:
        """The Cypher-style pattern this view materializes (for reports/logs)."""
        source = f":{self.source_type}" if self.source_type else ""
        target_type = self.target_type or self.source_type
        target = f":{target_type}" if target_type else ""
        label = f":{self.edge_label}" if self.edge_label else ""
        if self.k is not None:
            hops = f"*{self.k}" if self.k > 1 else ""
        else:
            hops = f"*1..{self.max_hops}"
        return (
            f"MATCH (src{source})-[{label}{hops}]->(dst{target}) "
            f"MERGE (src)-[:{self.output_label}]->(dst)"
        )


# Property predicates for summarizers are (property name, operator, value)
# triples; an empty tuple means "no property restriction".
PropertyPredicate = tuple[str, str, Any]


@dataclass(frozen=True)
class SummarizerView(ViewDefinition):
    """A summarizer view specification.

    Attributes:
        name: View name (e.g. ``"jobs_and_files_only"``).
        summarizer_kind: One of :data:`SUMMARIZER_KINDS`.
        vertex_types: Vertex types the filter keeps or removes (per kind).
        edge_labels: Edge labels the filter keeps or removes (per kind).
        property_predicates: Extra property predicates on vertices
            (footnote 5 in the paper: predicates further reduce view size).
        group_by: For aggregators, the vertex property (or ``"type"``) whose
            value identifies the group/super-vertex.
        aggregations: For aggregators, mapping ``property -> aggregate name``
            (``sum``, ``avg``, ``min``, ``max``, ``count``).
    """

    summarizer_kind: str = "vertex_inclusion"
    vertex_types: tuple[str, ...] = ()
    edge_labels: tuple[str, ...] = ()
    property_predicates: tuple[PropertyPredicate, ...] = ()
    group_by: str | None = None
    aggregations: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.summarizer_kind not in SUMMARIZER_KINDS:
            raise ViewError(f"unknown summarizer kind {self.summarizer_kind!r}")
        filter_kinds = ("vertex_removal", "vertex_inclusion")
        if self.summarizer_kind in filter_kinds and not (
            self.vertex_types or self.property_predicates
        ):
            raise ViewError(f"{self.summarizer_kind} summarizer needs vertex types or predicates")
        if self.summarizer_kind in ("edge_removal", "edge_inclusion") and not self.edge_labels:
            raise ViewError(f"{self.summarizer_kind} summarizer needs edge labels")
        if self.summarizer_kind.endswith("aggregator") and self.group_by is None:
            raise ViewError(f"{self.summarizer_kind} summarizer needs a group_by key")

    @property
    def kind(self) -> str:
        return "summarizer"

    def signature(self) -> tuple:
        return (
            "summarizer",
            self.summarizer_kind,
            self.vertex_types,
            self.edge_labels,
            self.property_predicates,
            self.group_by,
            self.aggregations,
        )

    def describe(self) -> str:
        if self.summarizer_kind in ("vertex_inclusion", "vertex_removal"):
            action = "keep" if self.summarizer_kind == "vertex_inclusion" else "remove"
            return f"summarizer[{self.name}]: {action} vertex types {list(self.vertex_types)}"
        if self.summarizer_kind in ("edge_inclusion", "edge_removal"):
            action = "keep" if self.summarizer_kind == "edge_inclusion" else "remove"
            return f"summarizer[{self.name}]: {action} edge labels {list(self.edge_labels)}"
        return (
            f"summarizer[{self.name}]: {self.summarizer_kind} grouped by {self.group_by!r} "
            f"aggregating {dict(self.aggregations)}"
        )


def definition_to_dict(definition: ViewDefinition) -> dict[str, Any]:
    """Convert a view definition to a JSON-serializable dictionary.

    The inverse is :func:`definition_from_dict`; together they let the
    persistent view store (and any external tooling) round-trip catalog
    contents without pickling.
    """
    if isinstance(definition, ConnectorView):
        return {
            "view_class": "connector",
            "name": definition.name,
            "connector_kind": definition.connector_kind,
            "source_type": definition.source_type,
            "target_type": definition.target_type,
            "k": definition.k,
            "max_hops": definition.max_hops,
            "edge_label": definition.edge_label,
            "output_label": definition.output_label,
        }
    if isinstance(definition, SummarizerView):
        return {
            "view_class": "summarizer",
            "name": definition.name,
            "summarizer_kind": definition.summarizer_kind,
            "vertex_types": list(definition.vertex_types),
            "edge_labels": list(definition.edge_labels),
            "property_predicates": [list(p) for p in definition.property_predicates],
            "group_by": definition.group_by,
            "aggregations": [list(a) for a in definition.aggregations],
        }
    raise ViewError(f"cannot serialize view definition of type {type(definition)!r}")


def _deep_tuple(value: Any) -> Any:
    """Recursively convert lists to tuples (JSON round-trip loses tuple-ness).

    Signatures must stay hashable, and predicate *values* may themselves be
    sequences (e.g. ``("tags", "in", ("prod", "etl"))``).
    """
    if isinstance(value, list):
        return tuple(_deep_tuple(item) for item in value)
    return value


def definition_from_dict(payload: Mapping[str, Any]) -> ViewDefinition:
    """Inverse of :func:`definition_to_dict`.

    JSON has no tuples, so sequence fields come back as lists and are
    re-tupled here (recursively, for nested predicate values) — signatures of
    reloaded definitions must compare equal to the originals and stay
    hashable.
    """
    view_class = payload.get("view_class")
    if view_class == "connector":
        return ConnectorView(
            name=payload["name"],
            connector_kind=payload["connector_kind"],
            source_type=payload.get("source_type"),
            target_type=payload.get("target_type"),
            k=payload.get("k"),
            max_hops=payload.get("max_hops", 8),
            edge_label=payload.get("edge_label"),
            output_label=payload.get("output_label", ""),
        )
    if view_class == "summarizer":
        return SummarizerView(
            name=payload["name"],
            summarizer_kind=payload["summarizer_kind"],
            vertex_types=tuple(payload.get("vertex_types", ())),
            edge_labels=tuple(payload.get("edge_labels", ())),
            property_predicates=_deep_tuple(list(payload.get("property_predicates", ()))),
            group_by=payload.get("group_by"),
            aggregations=_deep_tuple(list(payload.get("aggregations", ()))),
        )
    raise ViewError(f"unknown view class {view_class!r} in serialized definition")


def job_to_job_connector(k: int = 2, name: str | None = None) -> ConnectorView:
    """The paper's canonical job-to-job k-hop connector (Fig. 3c, Listing 4)."""
    return ConnectorView(
        name=name or f"job_to_job_{k}hop",
        connector_kind="k_hop_same_vertex_type",
        source_type="Job",
        target_type="Job",
        k=k,
    )


def author_to_author_connector(k: int = 2, name: str | None = None) -> ConnectorView:
    """The author-to-author connector used for the dblp experiments (§VII-F)."""
    return ConnectorView(
        name=name or f"author_to_author_{k}hop",
        connector_kind="k_hop_same_vertex_type",
        source_type="Author",
        target_type="Author",
        k=k,
    )


def vertex_to_vertex_connector(vertex_type: str = "Vertex", k: int = 2,
                               name: str | None = None) -> ConnectorView:
    """The vertex-to-vertex connector used for homogeneous networks (§VII-F)."""
    return ConnectorView(
        name=name or f"vertex_to_vertex_{k}hop",
        connector_kind="k_hop_same_vertex_type",
        source_type=vertex_type,
        target_type=vertex_type,
        k=k,
    )


def keep_types_summarizer(types: Sequence[str], name: str | None = None) -> SummarizerView:
    """Schema-level summarizer keeping only the given vertex types (Fig. 6's "filter")."""
    return SummarizerView(
        name=name or "keep_" + "_".join(t.lower() for t in types),
        summarizer_kind="vertex_inclusion",
        vertex_types=tuple(types),
    )
