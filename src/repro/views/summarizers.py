"""Summarizer view materialization.

A summarizer of G = (V, E) is a graph G' with V(G') ⊆ V(G), E(G') ⊆ E(G), and
strictly fewer vertices or edges (§VI-B).  Kaskade's summarizers are inclusion
and removal filters over vertex/edge types (optionally with property
predicates) and aggregators that group vertices/edges/subgraphs into super
vertices/edges (Table II).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.errors import ViewError
from repro.graph.property_graph import Edge, PropertyGraph, Vertex
from repro.graph.transform import filter_graph, group_vertices
from repro.query.aggregates import AGGREGATES
from repro.views.definitions import PropertyPredicate, SummarizerView


def _evaluate_predicate(value: Any, operator: str, expected: Any) -> bool:
    """Evaluate a single property predicate (None values never match)."""
    if value is None:
        return False
    comparisons: dict[str, Callable[[Any, Any], bool]] = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    comparison = comparisons.get(operator)
    if comparison is None:
        raise ViewError(f"unsupported property predicate operator {operator!r}")
    return comparison(value, expected)


def _vertex_satisfies(vertex: Vertex, predicates: tuple[PropertyPredicate, ...]) -> bool:
    return all(
        _evaluate_predicate(vertex.get(prop), operator, expected)
        for prop, operator, expected in predicates
    )


def materialize_summarizer(graph: PropertyGraph, view: SummarizerView) -> PropertyGraph:
    """Materialize a summarizer view over ``graph``.

    Raises:
        ViewError: If the summarizer kind is unknown (guarded upstream) or the
            aggregation functions are invalid.
    """
    kind = view.summarizer_kind
    if kind in ("vertex_inclusion", "vertex_removal"):
        return _filter_vertices(graph, view)
    if kind in ("edge_inclusion", "edge_removal"):
        return _filter_edges(graph, view)
    if kind in ("vertex_aggregator", "subgraph_aggregator"):
        return _aggregate_vertices(graph, view)
    if kind == "edge_aggregator":
        return _aggregate_edges(graph, view)
    raise ViewError(f"unsupported summarizer kind {kind!r}")  # pragma: no cover


# ----------------------------------------------------------------- filtering
#: Summarizer kinds whose view is a pure subgraph filter — maintainable by
#: applying the same keep-predicate to each base-graph delta event.
FILTER_SUMMARIZER_KINDS = ("vertex_inclusion", "vertex_removal",
                           "edge_inclusion", "edge_removal")


def vertex_keep_predicate(view: SummarizerView) -> Callable[[Vertex], bool]:
    """The vertex keep-predicate a filter summarizer materializes with.

    For edge filters every vertex is kept; for vertex filters the predicate
    combines the type set and property predicates (inverted for removal
    kinds).  Shared with :mod:`repro.views.delta` so incremental maintenance
    and full materialization can never disagree on what "kept" means.
    """
    if view.summarizer_kind in ("edge_inclusion", "edge_removal"):
        return lambda vertex: True
    types = set(view.vertex_types)
    keep = view.summarizer_kind == "vertex_inclusion"

    def predicate(vertex: Vertex) -> bool:
        in_types = (not types) or (vertex.type in types)
        satisfies = _vertex_satisfies(vertex, view.property_predicates)
        selected = in_types and satisfies
        return selected if keep else not selected

    return predicate


def edge_keep_predicate(view: SummarizerView) -> Callable[[Edge], bool]:
    """The edge keep-predicate a filter summarizer materializes with.

    Endpoint survival is *not* part of this predicate (filter_graph checks it
    separately); vertex filters keep every edge between surviving endpoints.
    """
    if view.summarizer_kind in ("vertex_inclusion", "vertex_removal"):
        return lambda edge: True
    labels = set(view.edge_labels)
    keep = view.summarizer_kind == "edge_inclusion"

    def predicate(edge: Edge) -> bool:
        selected = edge.label in labels
        return selected if keep else not selected

    return predicate


def _filter_vertices(graph: PropertyGraph, view: SummarizerView) -> PropertyGraph:
    return filter_graph(graph, vertex_predicate=vertex_keep_predicate(view),
                        name=f"{graph.name}|{view.name}")


def _filter_edges(graph: PropertyGraph, view: SummarizerView) -> PropertyGraph:
    return filter_graph(graph, edge_predicate=edge_keep_predicate(view),
                        name=f"{graph.name}|{view.name}")


# --------------------------------------------------------------- aggregation
def _resolve_aggregations(view: SummarizerView) -> dict[str, Callable[[list[Any]], Any]]:
    aggregators: dict[str, Callable[[list[Any]], Any]] = {}
    for prop, aggregate_name in view.aggregations:
        function = AGGREGATES.get(aggregate_name)
        if function is None:
            raise ViewError(f"unsupported aggregate function {aggregate_name!r}")
        aggregators[prop] = function
    return aggregators


def _group_key(view: SummarizerView) -> Callable[[Vertex], Hashable | None]:
    group_by = view.group_by
    restrict_types = set(view.vertex_types)

    def key(vertex: Vertex) -> Hashable | None:
        if restrict_types and vertex.type not in restrict_types:
            return None
        if group_by == "type":
            return vertex.type
        value = vertex.get(group_by)
        return value if value is not None else None

    return key


def _aggregate_vertices(graph: PropertyGraph, view: SummarizerView) -> PropertyGraph:
    """Vertex/subgraph aggregator: group vertices by a property (or type)."""
    return group_vertices(
        graph,
        key=_group_key(view),
        supervertex_type=f"{view.name}_group",
        aggregators=_resolve_aggregations(view),
        name=f"{graph.name}|{view.name}",
    )


def _aggregate_edges(graph: PropertyGraph, view: SummarizerView) -> PropertyGraph:
    """Edge aggregator: merge parallel edges between the same endpoints.

    Edges whose label is listed in ``view.edge_labels`` (or all edges when the
    list is empty) are grouped by (source, target, label); each group becomes a
    single super-edge whose properties are aggregated with the view's
    aggregation functions plus an ``edge_count``.
    """
    labels = set(view.edge_labels)
    aggregators = _resolve_aggregations(view)
    result = PropertyGraph(name=f"{graph.name}|{view.name}", schema=graph.schema)
    for vertex in graph.vertices():
        result.add_vertex(vertex.id, vertex.type, **vertex.properties)

    grouped: dict[tuple[Any, Any, str], list[Edge]] = {}
    for edge in graph.edges():
        if labels and edge.label not in labels:
            result.add_edge(edge.source, edge.target, edge.label, **edge.properties)
            continue
        grouped.setdefault((edge.source, edge.target, edge.label), []).append(edge)

    for (source, target, label), members in grouped.items():
        properties: dict[str, Any] = {"edge_count": len(members)}
        for prop, function in aggregators.items():
            values = [m.properties[prop] for m in members if prop in m.properties]
            if values:
                properties[prop] = function(values)
        result.add_edge(source, target, label, **properties)
    return result


def summarizer_reduction(graph: PropertyGraph, view: SummarizerView) -> dict[str, float]:
    """Vertex/edge reduction factors achieved by a summarizer (used in Fig. 6).

    Returns a dict with the original and summarized sizes plus reduction
    ratios (original / summarized; ``inf`` when the summarized count is 0).
    """
    summarized = materialize_summarizer(graph, view)
    vertex_ratio = (graph.num_vertices / summarized.num_vertices
                    if summarized.num_vertices else float("inf"))
    edge_ratio = (graph.num_edges / summarized.num_edges
                  if summarized.num_edges else float("inf"))
    return {
        "original_vertices": graph.num_vertices,
        "original_edges": graph.num_edges,
        "summarized_vertices": summarized.num_vertices,
        "summarized_edges": summarized.num_edges,
        "vertex_reduction": vertex_ratio,
        "edge_reduction": edge_ratio,
    }
