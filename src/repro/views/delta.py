"""Delta-driven maintenance of every view in a catalog.

:class:`~repro.views.maintenance.ConnectorMaintainer` is the single-view
primitive; this module is the *subsystem* around it (§VIII [23], Zhuge &
Garcia-Molina): a :class:`MaintenanceManager` consumes the base graph's
bounded mutation log (:class:`~repro.graph.changelog.ChangeLog`) in batches
and brings **every** materialized view in a
:class:`~repro.views.catalog.ViewCatalog` back in sync:

* **k-hop connectors** are maintained incrementally — inserts via the
  backward x forward path join, deletes via the targeted simple-path witness
  check — replaying each edge event through the corrected maintainer;
* **filter summarizers** (vertex/edge inclusion and removal) are maintained
  by applying the *same keep-predicates materialization uses* to each delta
  event, so the maintained subgraph can never drift from
  :func:`~repro.views.summarizers.materialize_summarizer` semantics;
* everything else (aggregator summarizers, variable-length connectors) falls
  back to full re-materialization, as does any view whose delta has been
  evicted from the bounded log or is larger than the incremental path is
  worth (``max_events_incremental``).

After a view is refreshed the attached
:class:`~repro.storage.manager.StorageManager` (when present) re-freezes its
read-optimized snapshot instead of leaving hot reads on the dict graph.

Events replay in log order against the *current* graph state; the handlers
are written so that out-of-order knowledge (an edge added then removed later
in the same batch, a deleted endpoint) converges to exactly the view a fresh
materialization of the current graph would produce — the differential tests
in ``tests/views/test_delta.py`` assert edge-set identity under randomized
mutation streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import EdgeNotFoundError
from repro.graph.changelog import ChangeLog, GraphMutation
from repro.graph.property_graph import Edge, PropertyGraph
from repro.views.catalog import MaterializedView, ViewCatalog
from repro.views.connectors import materialize_connector
from repro.views.definitions import ConnectorView, SummarizerView
from repro.views.maintenance import ConnectorMaintainer, MaintenanceReport
from repro.views.summarizers import (
    FILTER_SUMMARIZER_KINDS,
    edge_keep_predicate,
    materialize_summarizer,
    vertex_keep_predicate,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (manager -> catalog)
    from repro.storage.manager import StorageManager

#: Refresh strategies reported per view.
REFRESH_STRATEGIES = ("fresh", "incremental", "rematerialized")


@dataclass
class ViewRefresh:
    """How one view was brought up to date."""

    name: str
    strategy: str  # one of REFRESH_STRATEGIES
    events_applied: int = 0
    added_edges: int = 0
    removed_edges: int = 0
    seconds: float = 0.0


@dataclass
class RefreshReport:
    """Summary of one :meth:`MaintenanceManager.refresh` pass."""

    base_version: int
    views: list[ViewRefresh] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def refreshed(self) -> int:
        """Views that were stale and got updated (incrementally or rebuilt)."""
        return sum(1 for v in self.views if v.strategy != "fresh")

    @property
    def incremental(self) -> int:
        return sum(1 for v in self.views if v.strategy == "incremental")

    @property
    def rematerialized(self) -> int:
        return sum(1 for v in self.views if v.strategy == "rematerialized")

    @property
    def changed(self) -> bool:
        return any(v.added_edges or v.removed_edges or v.strategy == "rematerialized"
                   for v in self.views)


class MaintenanceManager:
    """Keeps every view of a catalog consistent with one mutating base graph.

    Example:
        >>> from repro.graph import PropertyGraph
        >>> from repro.views import ViewCatalog, job_to_job_connector
        >>> g = PropertyGraph()
        >>> for j in ("j1", "j2"): _ = g.add_vertex(j, "Job")
        >>> _ = g.add_vertex("f1", "File")
        >>> catalog = ViewCatalog()
        >>> view = catalog.materialize(g, job_to_job_connector())
        >>> manager = MaintenanceManager(g, catalog)
        >>> _ = g.add_edge("j1", "f1", "WRITES_TO")
        >>> _ = g.add_edge("f1", "j2", "IS_READ_BY")
        >>> report = manager.refresh()
        >>> view.graph.has_edge("j1", "j2")
        True
    """

    def __init__(self, graph: PropertyGraph, catalog: ViewCatalog,
                 storage: "StorageManager | None" = None,
                 log_capacity: int = 100_000,
                 max_paths: int | None = None,
                 max_events_incremental: int = 50_000) -> None:
        """Attach to a base graph and start capturing its mutations.

        Args:
            graph: The base graph every catalog view is defined over.
            catalog: Views to keep fresh.
            storage: When given, refreshed views get their read-optimized
                snapshots re-frozen (and the manager's union cache for this
                graph invalidated) after every refresh.
            log_capacity: Bound on the mutation log; deltas evicted past this
                bound force re-materialization instead of incremental replay.
            max_paths: Cap forwarded to connector re-materialization.
            max_events_incremental: Deltas longer than this are assumed
                cheaper to re-materialize than to replay event by event.
        """
        self.graph = graph
        self.catalog = catalog
        self.storage = storage
        self.max_paths = max_paths
        self.max_events_incremental = max_events_incremental
        self.log: ChangeLog = graph.enable_change_capture(capacity=log_capacity)

    # ----------------------------------------------------------------- refresh
    def refresh(self) -> RefreshReport:
        """Bring every catalog view up to date with the base graph.

        Views already at the current graph version are skipped (reported with
        strategy ``"fresh"``).  Stale views are maintained incrementally when
        the view class supports it and the full delta is still in the log;
        otherwise they are re-materialized from scratch.
        """
        start = time.perf_counter()
        attached = self.graph.changelog
        if attached is not self.log:
            # Capture was disabled (or swapped) behind our back: our log no
            # longer sees the graph's mutations.  Adopt the graph's current
            # log — its floor version reflects any unobserved gap, so views
            # older than it fail the replay check below and are rebuilt.
            self.log = (attached if attached is not None
                        else self.graph.enable_change_capture(capacity=self.log.capacity))
        current = self.graph.version
        report = RefreshReport(base_version=current)
        events_cache: dict[int, list[GraphMutation] | None] = {}
        for view in self.catalog:
            view_start = time.perf_counter()
            refresh = self._refresh_view(view, current, events_cache)
            refresh.seconds = time.perf_counter() - view_start
            report.views.append(refresh)
            if refresh.strategy != "fresh" and self.storage is not None:
                self.storage.on_maintained(view, base_graph=self.graph)
        report.elapsed_seconds = time.perf_counter() - start
        return report

    def _refresh_view(self, view: MaterializedView, current: int,
                      events_cache: dict[int, list[GraphMutation] | None]) -> ViewRefresh:
        name = view.definition.name
        if view.base_version == current:
            return ViewRefresh(name=name, strategy="fresh")
        events: list[GraphMutation] | None = None
        if view.base_version is not None:
            if view.base_version in events_cache:
                events = events_cache[view.base_version]
            else:
                events = self.log.events_since(view.base_version)
                events_cache[view.base_version] = events
        if (events is None
                or len(events) > self.max_events_incremental
                or not self.supports_incremental(view)):
            self._rematerialize(view)
            view.base_version = current
            return ViewRefresh(name=name, strategy="rematerialized",
                               events_applied=len(events or ()))
        if isinstance(view.definition, ConnectorView):
            maintenance = self._apply_connector_delta(view, events)
        else:
            maintenance = self._apply_summarizer_delta(view, events)
        view.base_version = current
        return ViewRefresh(name=name, strategy="incremental",
                           events_applied=len(events),
                           added_edges=maintenance.added_edges,
                           removed_edges=maintenance.removed_edges)

    def supports_incremental(self, view: MaterializedView) -> bool:
        """Whether this view class has a delta-replay maintenance path."""
        definition = view.definition
        if isinstance(definition, ConnectorView):
            return (definition.connector_kind in ("k_hop", "k_hop_same_vertex_type")
                    and definition.k is not None)
        if isinstance(definition, SummarizerView):
            return definition.summarizer_kind in FILTER_SUMMARIZER_KINDS
        return False

    # -------------------------------------------------------------- connectors
    def _apply_connector_delta(self, view: MaterializedView,
                               events: list[GraphMutation]) -> MaintenanceReport:
        """Replay a delta through the connector maintainer.

        Insert events replay in order against the current graph (an edge that
        was re-removed later in the delta is skipped outright — every path it
        contributed is gone, and replaying it would contract phantom
        witnesses).  Delete events are handed to the maintainer as **one
        batch**: witnesses can lose several hops in the same delta, so the
        targeted staleness scan must see all removed edges together.
        """
        maintainer = ConnectorMaintainer(self.graph, view)
        report = MaintenanceReport()
        view_graph = view.graph
        removed: list[tuple] = []
        skipped_edge_ids: set[int] = set()
        for event in events:
            if event.kind == "add_edge":
                assert event.edge_id is not None
                if not self.graph.has_edge_id(event.edge_id):
                    skipped_edge_ids.add(event.edge_id)
                    continue
                report.merge(maintainer.on_edge_added(event.source, event.target,
                                                      event.label))
            elif event.kind == "remove_edge":
                # Removal of an edge added (and skipped) within this delta
                # cannot invalidate any witness the view currently contracts.
                if event.edge_id not in skipped_edge_ids:
                    removed.append((event.source, event.target, event.label))
            elif event.kind == "remove_vertex" and view_graph.has_vertex(event.vertex_id):
                # An endpoint that left the base graph cannot anchor any
                # path; neighbors isolated by the cascade leave with it
                # (materialization only emits path endpoints).
                neighbors = view_graph.neighbors(event.vertex_id)
                report.removed_edges += view_graph.degree(event.vertex_id)
                view_graph.remove_vertex(event.vertex_id)
                for neighbor in neighbors:
                    if view_graph.has_vertex(neighbor) and view_graph.degree(neighbor) == 0:
                        view_graph.remove_vertex(neighbor)
        if removed:
            report.merge(maintainer.on_edges_removed(removed))
        return report

    # ------------------------------------------------------------- summarizers
    def _apply_summarizer_delta(self, view: MaterializedView,
                                events: list[GraphMutation]) -> MaintenanceReport:
        """Replay a delta through the summarizer's own keep-predicates."""
        definition = view.definition
        assert isinstance(definition, SummarizerView)
        keep_vertex = vertex_keep_predicate(definition)
        keep_edge = edge_keep_predicate(definition)
        view_graph = view.graph
        graph = self.graph
        report = MaintenanceReport()
        # Base edges added then re-removed within the delta are never copied
        # into the view; their remove events must then be skipped too.
        skipped_edge_ids: set[int] = set()
        for event in events:
            if event.kind == "add_vertex":
                if graph.has_vertex(event.vertex_id) and not view_graph.has_vertex(event.vertex_id):
                    vertex = graph.vertex(event.vertex_id)
                    if keep_vertex(vertex):
                        view_graph.add_vertex(vertex.id, vertex.type, **vertex.properties)
            elif event.kind == "remove_vertex":
                if view_graph.has_vertex(event.vertex_id):
                    report.removed_edges += view_graph.degree(event.vertex_id)
                    view_graph.remove_vertex(event.vertex_id)
            elif event.kind == "add_edge":
                assert event.edge_id is not None
                try:
                    edge = graph.edge(event.edge_id)
                except EdgeNotFoundError:
                    # The edge is already gone from the base graph (edge ids
                    # are never reused); skip its remove event symmetrically.
                    skipped_edge_ids.add(event.edge_id)
                    continue
                if (view_graph.has_vertex(edge.source) and view_graph.has_vertex(edge.target)
                        and keep_edge(edge)):
                    view_graph.add_edge(edge.source, edge.target, edge.label,
                                        **edge.properties)
                    report.added_edges += 1
            elif event.kind == "remove_edge":
                if event.edge_id in skipped_edge_ids:
                    continue
                report.removed_edges += self._remove_matching_edge(view_graph, event)
        return report

    @staticmethod
    def _remove_matching_edge(view_graph: PropertyGraph, event: GraphMutation) -> int:
        """Remove one view edge matching a base remove_edge event.

        View edges carry their own ids, so the match is by (source, target,
        label).  Removing any one parallel match keeps the edge multiset
        identical to a fresh materialization.  A missing match is a no-op: the
        edge was filtered out, or already dropped by a remove_vertex cascade.
        """
        if not view_graph.has_vertex(event.source):
            return 0
        match: Edge | None = None
        for edge in view_graph.out_edges(event.source, event.label):
            if edge.target == event.target:
                match = edge
                break
        if match is None:
            return 0
        view_graph.remove_edge(match.id)
        return 1

    # ------------------------------------------------------------ full rebuild
    def _rematerialize(self, view: MaterializedView) -> None:
        """Replace the view's graph with a from-scratch materialization."""
        definition = view.definition
        start = time.perf_counter()
        if isinstance(definition, ConnectorView):
            fresh = materialize_connector(self.graph, definition, max_paths=self.max_paths)
        elif isinstance(definition, SummarizerView):
            fresh = materialize_summarizer(self.graph, definition)
        else:  # pragma: no cover - catalog only holds the two view classes
            raise TypeError(f"cannot rematerialize view of type {type(definition)!r}")
        view.graph = fresh
        view.creation_seconds = time.perf_counter() - start
        view.store = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MaintenanceManager(graph={self.graph.name!r}, views={len(self.catalog)}, "
            f"log={self.log!r})"
        )
