"""Incremental maintenance of materialized connector views.

The notion of graph views and algorithms for their incremental maintenance
goes back to Zhuge and Garcia-Molina (§VIII, [23]).  The paper materializes
views once per workload; this module adds the natural incremental-maintenance
counterpart so that a materialized k-hop connector stays consistent when edges
are inserted into (or removed from) the base graph, without recomputing the
whole view.

Only connector views are maintained incrementally — summarizers are cheap to
recompute and their maintenance is a straightforward filter over the delta.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.property_graph import PropertyGraph, VertexId
from repro.views.catalog import MaterializedView
from repro.views.definitions import ConnectorView


@dataclass
class MaintenanceReport:
    """Summary of one incremental maintenance step."""

    added_edges: int = 0
    removed_edges: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.added_edges or self.removed_edges)


class ConnectorMaintainer:
    """Keeps a materialized k-hop connector view in sync with its base graph."""

    def __init__(self, base_graph: PropertyGraph, view: MaterializedView) -> None:
        definition = view.definition
        if not isinstance(definition, ConnectorView) or definition.k is None:
            raise ValueError("ConnectorMaintainer only supports k-hop connector views")
        self.base_graph = base_graph
        self.view = view
        self.definition: ConnectorView = definition

    # ------------------------------------------------------------------ insert
    def on_edge_added(self, source: VertexId, target: VertexId) -> MaintenanceReport:
        """Update the view after ``source -> target`` was added to the base graph.

        New k-hop paths through the new edge are found by combining backward
        paths ending at ``source`` with forward paths starting at ``target``.
        """
        report = MaintenanceReport()
        k = self.definition.k
        assert k is not None
        source_type = self.definition.source_type
        target_type = self.definition.target_type or source_type

        backward = self._paths_ending_at(source, k - 1)
        forward = self._paths_starting_at(target, k - 1)
        for prefix in backward:
            for suffix in forward:
                if len(prefix) + len(suffix) != k + 1:
                    # prefix has p edges, suffix has s edges, p + s + 1 == k
                    continue
                path = prefix + suffix
                is_closed = path[0] == path[-1]
                distinct = len(set(path))
                # Accept simple paths, plus closed paths whose only repetition is
                # the shared endpoint (mirrors allow_closing in materialization).
                if distinct != len(path) and not (is_closed and distinct == len(path) - 1):
                    continue
                start_vertex = self.base_graph.vertex(path[0])
                end_vertex = self.base_graph.vertex(path[-1])
                if source_type is not None and start_vertex.type != source_type:
                    continue
                if target_type is not None and end_vertex.type != target_type:
                    continue
                report.added_edges += self._add_view_edge(path[0], path[-1], k)
        return report

    def _paths_ending_at(self, vertex_id: VertexId, max_edges: int) -> list[tuple[VertexId, ...]]:
        """All simple paths with 0..max_edges edges that end at ``vertex_id``
        (returned including the endpoint, ordered source..vertex_id)."""
        results: list[tuple[VertexId, ...]] = [(vertex_id,)]
        frontier: list[tuple[VertexId, ...]] = [(vertex_id,)]
        for _ in range(max_edges):
            next_frontier: list[tuple[VertexId, ...]] = []
            for path in frontier:
                for edge in self.base_graph.in_edges(path[0]):
                    if edge.source in path:
                        continue
                    extended = (edge.source,) + path
                    next_frontier.append(extended)
                    results.append(extended)
            frontier = next_frontier
        return results

    def _paths_starting_at(self, vertex_id: VertexId, max_edges: int) -> list[tuple[VertexId, ...]]:
        """All simple paths with 0..max_edges edges that start at ``vertex_id``."""
        results: list[tuple[VertexId, ...]] = [(vertex_id,)]
        frontier: list[tuple[VertexId, ...]] = [(vertex_id,)]
        for _ in range(max_edges):
            next_frontier: list[tuple[VertexId, ...]] = []
            for path in frontier:
                for edge in self.base_graph.out_edges(path[-1]):
                    if edge.target in path:
                        continue
                    extended = path + (edge.target,)
                    next_frontier.append(extended)
                    results.append(extended)
            frontier = next_frontier
        return results

    def _add_view_edge(self, source: VertexId, target: VertexId, hops: int) -> int:
        """Add (or bump the path count of) a contracted edge in the view graph."""
        view_graph = self.view.graph
        for endpoint in (source, target):
            if not view_graph.has_vertex(endpoint):
                vertex = self.base_graph.vertex(endpoint)
                view_graph.add_vertex(vertex.id, vertex.type, **vertex.properties)
        for edge in view_graph.out_edges(source, self.definition.output_label):
            if edge.target == target:
                edge.properties["path_count"] = edge.get("path_count", 1) + 1
                return 0
        view_graph.add_edge(source, target, self.definition.output_label,
                            path_count=1, hops=hops)
        return 1

    # ------------------------------------------------------------------ delete
    def on_edge_removed(self, source: VertexId, target: VertexId) -> MaintenanceReport:
        """Update the view after ``source -> target`` was removed from the base graph.

        Every contracted edge whose endpoints can no longer reach each other
        within exactly k hops is dropped; others have their path counts
        recomputed lazily (count maintenance is not required for correctness
        of rewrites, only the edge set is).
        """
        report = MaintenanceReport()
        k = self.definition.k
        assert k is not None
        view_graph = self.view.graph
        stale: list[int] = []
        for edge in view_graph.edges(self.definition.output_label):
            if not self._k_hop_path_exists(edge.source, edge.target, k):
                stale.append(edge.id)
        for edge_id in stale:
            view_graph.remove_edge(edge_id)
            report.removed_edges += 1
        return report

    def _k_hop_path_exists(self, source: VertexId, target: VertexId, k: int) -> bool:
        frontier = {source}
        for _ in range(k):
            next_frontier: set[VertexId] = set()
            for vertex_id in frontier:
                for edge in self.base_graph.out_edges(vertex_id):
                    next_frontier.add(edge.target)
            frontier = next_frontier
            if not frontier:
                return False
        return target in frontier
