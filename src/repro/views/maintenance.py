"""Incremental maintenance of materialized connector views.

The notion of graph views and algorithms for their incremental maintenance
goes back to Zhuge and Garcia-Molina (§VIII, [23]).  The paper materializes
views once per workload; this module adds the natural incremental-maintenance
counterpart so that a materialized k-hop connector stays consistent when edges
are inserted into (or removed from) the base graph, without recomputing the
whole view.

The maintainer mirrors :func:`repro.views.connectors.materialize_connector`
semantics exactly:

* path expansion is restricted to the view's ``edge_label`` (when set), both
  for the triggering edge and for the backward/forward path joins;
* staleness checks after a deletion enumerate **simple** paths (with the same
  ``allow_closing`` endpoint exception materialization uses), not walks;
* deletions only re-examine contracted edges whose k-hop neighborhood contains
  the removed edge, instead of rescanning the whole view.

:class:`ConnectorMaintainer` is the single-view primitive; the catalog-wide,
delta-batch subsystem that drives it lives in :mod:`repro.views.delta`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.property_graph import PropertyGraph, VertexId
from repro.views.catalog import MaterializedView
from repro.views.definitions import ConnectorView


@dataclass
class MaintenanceReport:
    """Summary of one incremental maintenance step."""

    added_edges: int = 0
    removed_edges: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.added_edges or self.removed_edges)

    def merge(self, other: "MaintenanceReport") -> "MaintenanceReport":
        """Accumulate another report into this one (returns self)."""
        self.added_edges += other.added_edges
        self.removed_edges += other.removed_edges
        return self


class ConnectorMaintainer:
    """Keeps a materialized k-hop connector view in sync with its base graph."""

    def __init__(self, base_graph: PropertyGraph, view: MaterializedView) -> None:
        definition = view.definition
        if not isinstance(definition, ConnectorView) or definition.k is None:
            raise ValueError("ConnectorMaintainer only supports k-hop connector views")
        self.base_graph = base_graph
        self.view = view
        self.definition: ConnectorView = definition

    def _trigger_label_matches(self, label: str | None,
                               source: VertexId, target: VertexId) -> bool:
        """Whether the mutated edge can participate in the view's paths.

        ``label`` is the mutated edge's label when the caller knows it (the
        delta subsystem always does); with ``label=None`` the base graph is
        consulted for an edge with the view's label between the endpoints.
        """
        view_label = self.definition.edge_label
        if view_label is None:
            return True
        if label is not None:
            return label == view_label
        return self.base_graph.has_edge(source, target, view_label)

    # ------------------------------------------------------------------ insert
    def on_edge_added(self, source: VertexId, target: VertexId,
                      label: str | None = None) -> MaintenanceReport:
        """Update the view after ``source -> target`` was added to the base graph.

        New k-hop paths through the new edge are found by combining backward
        paths ending at ``source`` with forward paths starting at ``target``.
        For labeled views, the triggering edge and every joined hop must carry
        the view's ``edge_label``.
        """
        report = MaintenanceReport()
        if not (self.base_graph.has_vertex(source) and self.base_graph.has_vertex(target)):
            # Replaying a delta whose endpoints were deleted later in the
            # stream: any paths through this edge are gone already.
            return report
        if not self._trigger_label_matches(label, source, target):
            return report
        k = self.definition.k
        assert k is not None
        source_type = self.definition.source_type
        target_type = self.definition.target_type or source_type

        backward = self._paths_ending_at(source, k - 1)
        forward = self._paths_starting_at(target, k - 1)
        for prefix in backward:
            for suffix in forward:
                if len(prefix) + len(suffix) != k + 1:
                    # prefix has p edges, suffix has s edges, p + s + 1 == k
                    continue
                path = prefix + suffix
                is_closed = path[0] == path[-1]
                distinct = len(set(path))
                # Accept simple paths, plus closed paths whose only repetition is
                # the shared endpoint (mirrors allow_closing in materialization).
                if distinct != len(path) and not (is_closed and distinct == len(path) - 1):
                    continue
                start_vertex = self.base_graph.vertex(path[0])
                end_vertex = self.base_graph.vertex(path[-1])
                if source_type is not None and start_vertex.type != source_type:
                    continue
                if target_type is not None and end_vertex.type != target_type:
                    continue
                report.added_edges += self._add_view_edge(path[0], path[-1], k)
        return report

    def _paths_ending_at(self, vertex_id: VertexId, max_edges: int) -> list[tuple[VertexId, ...]]:
        """All simple paths with 0..max_edges edges that end at ``vertex_id``
        (returned including the endpoint, ordered source..vertex_id), using
        only the view's edge label when one is set."""
        label = self.definition.edge_label
        results: list[tuple[VertexId, ...]] = [(vertex_id,)]
        frontier: list[tuple[VertexId, ...]] = [(vertex_id,)]
        for _ in range(max_edges):
            next_frontier: list[tuple[VertexId, ...]] = []
            for path in frontier:
                for edge in self.base_graph.in_edges(path[0], label):
                    if edge.source in path:
                        continue
                    extended = (edge.source,) + path
                    next_frontier.append(extended)
                    results.append(extended)
            frontier = next_frontier
        return results

    def _paths_starting_at(self, vertex_id: VertexId, max_edges: int) -> list[tuple[VertexId, ...]]:
        """All simple paths with 0..max_edges edges that start at ``vertex_id``,
        using only the view's edge label when one is set."""
        label = self.definition.edge_label
        results: list[tuple[VertexId, ...]] = [(vertex_id,)]
        frontier: list[tuple[VertexId, ...]] = [(vertex_id,)]
        for _ in range(max_edges):
            next_frontier: list[tuple[VertexId, ...]] = []
            for path in frontier:
                for edge in self.base_graph.out_edges(path[-1], label):
                    if edge.target in path:
                        continue
                    extended = path + (edge.target,)
                    next_frontier.append(extended)
                    results.append(extended)
            frontier = next_frontier
        return results

    def _add_view_edge(self, source: VertexId, target: VertexId, hops: int) -> int:
        """Add (or bump the path count of) a contracted edge in the view graph."""
        view_graph = self.view.graph
        for endpoint in (source, target):
            if not view_graph.has_vertex(endpoint):
                vertex = self.base_graph.vertex(endpoint)
                view_graph.add_vertex(vertex.id, vertex.type, **vertex.properties)
        for edge in view_graph.out_edges(source, self.definition.output_label):
            if edge.target == target:
                edge.properties["path_count"] = edge.get("path_count", 1) + 1
                return 0
        view_graph.add_edge(source, target, self.definition.output_label,
                            path_count=1, hops=hops)
        return 1

    # ------------------------------------------------------------------ delete
    def on_edge_removed(self, source: VertexId, target: VertexId,
                        label: str | None = None) -> MaintenanceReport:
        """Update the view after ``source -> target`` was removed from the base graph.

        See :meth:`on_edges_removed` (this is the single-edge case).
        """
        return self.on_edges_removed([(source, target, label)])

    def on_edges_removed(
        self, removed: "list[tuple[VertexId, VertexId, str | None]]"
    ) -> MaintenanceReport:
        """Update the view after a batch of edges left the base graph.

        Only contracted edges whose k-hop neighborhood contains a removed edge
        are re-examined: a contracted edge (u, v) can only have lost a witness
        ``u ..-> source -> target ..-> v`` through some removed (source,
        target), so u must reach a removed source going backward and v must be
        reachable from a removed target going forward — within ``k - 1`` hops
        over the view's edge label.  The removed edges themselves are kept as
        a traversal *overlay* during this reachability pass: a witness may
        have lost several of its hops in the same batch, and the surviving
        graph alone then no longer connects the candidate endpoints to the
        removal site.  Each candidate is dropped when its endpoints no longer
        admit a **simple** k-hop witness path in the current graph; path
        counts of survivors are not recomputed (count maintenance is not
        required for correctness of rewrites, only the edge set is).
        """
        report = MaintenanceReport()
        view_label = self.definition.edge_label
        # A removed edge with a known non-matching label cannot have carried
        # any witness path; with an unknown label we must assume it did.
        relevant = [(source, target) for source, target, label in removed
                    if view_label is None or label is None or label == view_label]
        if not relevant:
            return report
        k = self.definition.k
        assert k is not None
        view_graph = self.view.graph

        overlay_in: dict[VertexId, list[VertexId]] = {}
        overlay_out: dict[VertexId, list[VertexId]] = {}
        for source, target in relevant:
            overlay_out.setdefault(source, []).append(target)
            overlay_in.setdefault(target, []).append(source)
        starts: set[VertexId] = set()
        ends: set[VertexId] = set()
        for source, target in relevant:
            starts |= self._reachable(source, k - 1, backward=True, overlay=overlay_in)
            ends |= self._reachable(target, k - 1, backward=False, overlay=overlay_out)

        stale: list[int] = []
        for u in starts:
            if not view_graph.has_vertex(u):
                continue
            for edge in view_graph.out_edges(u, self.definition.output_label):
                if edge.target not in ends:
                    continue
                if (not self.base_graph.has_vertex(edge.source)
                        or not self.base_graph.has_vertex(edge.target)
                        or not self._k_hop_path_exists(edge.source, edge.target, k)):
                    stale.append(edge.id)
        for edge_id in stale:
            edge = view_graph.edge(edge_id)
            endpoints = (edge.source, edge.target)
            view_graph.remove_edge(edge_id)
            report.removed_edges += 1
            # Materialization only emits path endpoints: an endpoint whose
            # last contracted edge just vanished leaves the view with it.
            for vertex_id in endpoints:
                if view_graph.has_vertex(vertex_id) and view_graph.degree(vertex_id) == 0:
                    view_graph.remove_vertex(vertex_id)
        return report

    def _reachable(self, vertex_id: VertexId, max_hops: int, backward: bool,
                   overlay: dict[VertexId, list[VertexId]] | None = None) -> set[VertexId]:
        """Vertices within ``max_hops`` of ``vertex_id`` (including itself),
        following the view's edge label, backward over in-edges or forward
        over out-edges.  ``overlay`` contributes extra adjacency (the edges
        removed in the current batch, traversable even when an endpoint
        vertex no longer exists).  Walk-reachability is a superset of
        simple-path reachability, which is all candidate pruning needs."""
        label = self.definition.edge_label
        seen = {vertex_id}
        frontier = [vertex_id]
        for _ in range(max_hops):
            next_frontier: list[VertexId] = []
            for current in frontier:
                neighbors: list[VertexId] = []
                if self.base_graph.has_vertex(current):
                    edges = (self.base_graph.in_edges(current, label) if backward
                             else self.base_graph.out_edges(current, label))
                    neighbors.extend(edge.source if backward else edge.target
                                     for edge in edges)
                if overlay is not None:
                    neighbors.extend(overlay.get(current, ()))
                for neighbor in neighbors:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            if not next_frontier:
                break
            frontier = next_frontier
        return seen

    def _k_hop_path_exists(self, source: VertexId, target: VertexId, k: int) -> bool:
        """Whether a simple k-hop path source -> target exists in the base graph.

        Mirrors materialization exactly: traversal is restricted to the view's
        ``edge_label``, intermediate vertices may not repeat, and the final hop
        may close back onto the start (``allow_closing``) so that contracted
        self-loops survive precisely when re-materialization would keep them.
        """
        label = self.definition.edge_label

        def extend(current: VertexId, visited: set[VertexId], depth: int) -> bool:
            if depth == k:
                return current == target
            for edge in self.base_graph.out_edges(current, label):
                nxt = edge.target
                if nxt in visited:
                    is_closing_hop = (nxt == source and source == target
                                      and depth == k - 1)
                    if not is_closing_hop:
                        continue
                if extend(nxt, visited | {nxt}, depth + 1):
                    return True
            return False

        return extend(source, {source}, 0)
