"""Materialized view catalog.

Kaskade materializes the views selected by the workload analyzer and keeps
them available for view-based query rewriting (§II, Fig. 2: the "graph views"
v1, v2, v3 next to the raw graph inside the graph engine).  The catalog tracks
each materialized view's definition, the materialized graph, its actual size,
and how long materialization took (the measured creation cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import ViewError, ViewNotMaterializedError
from repro.graph.property_graph import PropertyGraph
from repro.views.connectors import materialize_connector
from repro.views.definitions import ConnectorView, SummarizerView, ViewDefinition
from repro.views.summarizers import materialize_summarizer

if TYPE_CHECKING:  # pragma: no cover - avoids a storage <-> views import cycle
    from repro.storage.base import GraphLike, GraphStore
    from repro.storage.manager import StorageManager


@dataclass
class MaterializedView:
    """A materialized graph view: definition + physical graph + statistics."""

    definition: ViewDefinition
    graph: PropertyGraph
    creation_seconds: float = 0.0
    #: Optional read-optimized snapshot (e.g. CSR) attached by a
    #: :class:`~repro.storage.manager.StorageManager`.
    store: "GraphStore | None" = None
    #: Base-graph ``version`` this view is consistent with, or None when
    #: unknown (externally registered / restored views).  Maintained by
    #: :meth:`ViewCatalog.materialize` and the delta-maintenance subsystem
    #: (:class:`~repro.views.delta.MaintenanceManager`).
    base_version: int | None = None

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def size(self) -> int:
        """View size in edges — the unit the cost model uses (§V-A)."""
        return self.graph.num_edges

    def footprint(self) -> int:
        """Estimated in-memory footprint in bytes (for space budgets)."""
        return self.graph.estimated_footprint()

    def read_store(self) -> "GraphLike":
        """The representation hot read paths should use.

        Returns the attached read-optimized snapshot when it is still in sync
        with the view graph; a stale snapshot (the view graph was mutated,
        e.g. by incremental maintenance) is dropped and the mutable graph is
        served instead.
        """
        store = self.store
        if store is not None:
            if getattr(store, "source_version", None) == self.graph.version:
                return store
            self.store = None
        return self.graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MaterializedView({self.definition.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )


class ViewCatalog:
    """The set of currently materialized views, keyed by definition signature.

    When a :class:`~repro.storage.manager.StorageManager` is attached, the
    catalog notifies it of every (re)materialization and registration so that
    eligible view graphs are frozen into read-optimized snapshots.
    """

    def __init__(self, storage: "StorageManager | None" = None) -> None:
        self._views: dict[tuple, MaterializedView] = {}
        self.storage = storage

    # ------------------------------------------------------------------ manage
    def materialize(self, graph: PropertyGraph, definition: ViewDefinition,
                    max_paths: int | None = None) -> MaterializedView:
        """Materialize a view over ``graph`` and register it.

        Re-materializing a view with the same signature replaces the stored one.
        """
        start = time.perf_counter()
        if isinstance(definition, ConnectorView):
            view_graph = materialize_connector(graph, definition, max_paths=max_paths)
        elif isinstance(definition, SummarizerView):
            view_graph = materialize_summarizer(graph, definition)
        else:
            raise ViewError(f"cannot materialize view definition of type {type(definition)!r}")
        elapsed = time.perf_counter() - start
        materialized = MaterializedView(definition=definition, graph=view_graph,
                                        creation_seconds=elapsed,
                                        base_version=graph.version)
        self.register(materialized)
        return materialized

    def register(self, view: MaterializedView) -> None:
        """Register an externally materialized view."""
        self._views[view.definition.signature()] = view
        if self.storage is not None:
            self.storage.on_materialized(view)

    def drop(self, definition: ViewDefinition) -> MaterializedView:
        """Remove a view from the catalog; returns the dropped view.

        Dropping is *complete*: the attached storage manager (when present)
        is notified so the view's CSR snapshot leaves both the manager and
        the cross-manager registry, cached union graphs over the view are
        discarded, and its persisted artifact is deleted — a later
        ``restore_views`` can never resurrect an evicted view.

        Raises:
            ViewNotMaterializedError: If the view is not in the catalog.
        """
        try:
            view = self._views.pop(definition.signature())
        except KeyError as exc:
            raise ViewNotMaterializedError(
                f"view {definition.name!r} is not materialized") from exc
        if self.storage is not None:
            self.storage.on_dropped(view)
        return view

    def clear(self) -> None:
        """Drop every materialized view (completely — see :meth:`drop`)."""
        for view in list(self._views.values()):
            self.drop(view.definition)

    # ------------------------------------------------------------------- query
    def get(self, definition: ViewDefinition) -> MaterializedView:
        """Look up the materialized view for a definition.

        Raises:
            ViewNotMaterializedError: If the view is not in the catalog.
        """
        try:
            return self._views[definition.signature()]
        except KeyError as exc:
            raise ViewNotMaterializedError(
                f"view {definition.name!r} is not materialized") from exc

    def find(self, definition: ViewDefinition) -> MaterializedView | None:
        """Like :meth:`get` but returns None when absent."""
        return self._views.get(definition.signature())

    def contains(self, definition: ViewDefinition) -> bool:
        """Whether a view with this definition is materialized."""
        return definition.signature() in self._views

    def connectors(self) -> list[MaterializedView]:
        """All materialized connector views."""
        return [v for v in self._views.values() if isinstance(v.definition, ConnectorView)]

    def summarizers(self) -> list[MaterializedView]:
        """All materialized summarizer views."""
        return [v for v in self._views.values() if isinstance(v.definition, SummarizerView)]

    def total_size(self) -> int:
        """Total size (in edges) of all materialized views."""
        return sum(view.size for view in self._views.values())

    def total_footprint(self) -> int:
        """Total estimated in-memory footprint (bytes) of all materialized views."""
        return sum(view.footprint() for view in self._views.values())

    def __iter__(self) -> Iterator[MaterializedView]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ViewCatalog(views={len(self._views)}, total_edges={self.total_size()})"
