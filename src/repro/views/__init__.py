"""Graph views: connectors, summarizers, catalog, and maintenance.

Connectors contract paths between target vertices into single edges;
summarizers filter or aggregate vertices and edges (§III-C, §VI).  The
:class:`ViewCatalog` tracks materialized views for use in view-based query
rewriting, and :class:`ConnectorMaintainer` keeps connector views consistent
under base-graph updates.
"""

from repro.views.definitions import (
    CONNECTOR_KINDS,
    SUMMARIZER_KINDS,
    ConnectorView,
    SummarizerView,
    ViewDefinition,
    author_to_author_connector,
    definition_from_dict,
    definition_to_dict,
    job_to_job_connector,
    keep_types_summarizer,
    vertex_to_vertex_connector,
)
from repro.views.connectors import (
    count_connector_edges,
    count_connector_paths,
    materialize_connector,
)
from repro.views.summarizers import materialize_summarizer, summarizer_reduction
from repro.views.catalog import MaterializedView, ViewCatalog
from repro.views.maintenance import ConnectorMaintainer, MaintenanceReport

__all__ = [
    "CONNECTOR_KINDS",
    "ConnectorMaintainer",
    "ConnectorView",
    "MaintenanceReport",
    "MaterializedView",
    "SUMMARIZER_KINDS",
    "SummarizerView",
    "ViewCatalog",
    "ViewDefinition",
    "author_to_author_connector",
    "count_connector_edges",
    "count_connector_paths",
    "definition_from_dict",
    "definition_to_dict",
    "job_to_job_connector",
    "keep_types_summarizer",
    "materialize_connector",
    "materialize_summarizer",
    "summarizer_reduction",
    "vertex_to_vertex_connector",
]
