"""Graph views: connectors, summarizers, catalog, and maintenance.

Connectors contract paths between target vertices into single edges;
summarizers filter or aggregate vertices and edges (§III-C, §VI).  The
:class:`ViewCatalog` tracks materialized views for use in view-based query
rewriting; :class:`ConnectorMaintainer` keeps a single connector view
consistent under base-graph updates, and :class:`MaintenanceManager` consumes
batched deltas from the graph's change-capture log to keep *every* catalog
view fresh (§VIII [23]).
"""

from repro.views.definitions import (
    CONNECTOR_KINDS,
    SUMMARIZER_KINDS,
    ConnectorView,
    SummarizerView,
    ViewDefinition,
    author_to_author_connector,
    definition_from_dict,
    definition_to_dict,
    job_to_job_connector,
    keep_types_summarizer,
    vertex_to_vertex_connector,
)
from repro.views.connectors import (
    count_connector_edges,
    count_connector_paths,
    materialize_connector,
)
from repro.views.summarizers import materialize_summarizer, summarizer_reduction
from repro.views.catalog import MaterializedView, ViewCatalog
from repro.views.delta import MaintenanceManager, RefreshReport, ViewRefresh
from repro.views.maintenance import ConnectorMaintainer, MaintenanceReport

__all__ = [
    "CONNECTOR_KINDS",
    "ConnectorMaintainer",
    "ConnectorView",
    "MaintenanceManager",
    "MaintenanceReport",
    "MaterializedView",
    "RefreshReport",
    "ViewRefresh",
    "SUMMARIZER_KINDS",
    "SummarizerView",
    "ViewCatalog",
    "ViewDefinition",
    "author_to_author_connector",
    "count_connector_edges",
    "count_connector_paths",
    "definition_from_dict",
    "definition_to_dict",
    "job_to_job_connector",
    "keep_types_summarizer",
    "materialize_connector",
    "materialize_summarizer",
    "summarizer_reduction",
    "vertex_to_vertex_connector",
]
