"""Connector view materialization.

A connector of a graph G is a graph G' in which every edge contracts a single
directed path between two *target vertices* of G, and V(G') is the union of
those target vertices (§VI-A).  This module materializes the connector
flavours of Table I against a :class:`~repro.graph.PropertyGraph` by
enumerating the qualifying paths and contracting them with
:func:`repro.graph.transform.contract_paths`.
"""

from __future__ import annotations

from typing import Callable

from repro.analytics import kernels
from repro.errors import ViewError
from repro.graph.property_graph import PropertyGraph, Vertex, VertexId
from repro.graph.transform import contract_paths, enumerate_k_hop_paths
from repro.views.definitions import ConnectorView


def materialize_connector(graph: PropertyGraph, view: ConnectorView,
                          max_paths: int | None = None) -> PropertyGraph:
    """Materialize a connector view over ``graph``.

    Args:
        graph: The base graph (typically already summarized, as in §VII-F).
        view: Connector specification.
        max_paths: Optional cap on the number of contracted paths, protecting
            against the exponential path counts of dense homogeneous graphs
            (the situation Fig. 5 warns about).

    Returns:
        The connector graph; contracted edges carry the view's ``output_label``
        plus ``hops`` and ``path_count`` properties.

    Raises:
        ViewError: If the view kind is not a connector kind.
    """
    kind = view.connector_kind
    if kind in ("k_hop", "k_hop_same_vertex_type"):
        paths = _k_hop_paths(graph, view, max_paths)
    elif kind == "same_vertex_type":
        paths = _same_type_paths(graph, view, max_paths)
    elif kind == "same_edge_type":
        paths = _same_edge_type_paths(graph, view, max_paths)
    elif kind == "source_to_sink":
        paths = _source_to_sink_paths(graph, view, max_paths)
    else:  # pragma: no cover - guarded by ConnectorView validation
        raise ViewError(f"unsupported connector kind {kind!r}")
    connector = contract_paths(graph, paths, view.output_label,
                               name=f"{graph.name}|{view.name}")
    return connector


# ----------------------------------------------------------------- path logic
def _type_predicate(vertex_type: str | None) -> Callable[[Vertex], bool] | None:
    if vertex_type is None:
        return None
    return lambda vertex: vertex.type == vertex_type


def _k_hop_paths(graph: PropertyGraph, view: ConnectorView,
                 max_paths: int | None) -> list[tuple[VertexId, ...]]:
    """Paths for k-hop connectors: exactly k hops between the target types.

    When a CSR snapshot is already cached — or the estimated enumeration work
    justifies freezing one — the index-space kernel enumerates instead,
    walking pre-sliced interned adjacency with byte-mask endpoint predicates
    rather than re-walking ``PropertyGraph`` adjacency dicts per source; the
    kernel emits the exact path list — same paths, same order, same
    ``max_paths`` cutoff — the reference
    :func:`~repro.graph.transform.enumerate_k_hop_paths` produces.
    """
    assert view.k is not None
    store = kernels.resolve_store_for_paths(graph, view.k)
    if store is not None:
        return kernels.k_hop_paths(
            store,
            view.k,
            source_type=view.source_type,
            target_type=view.target_type or view.source_type,
            edge_label=view.edge_label or None,
            allow_closing=True,
            max_paths=max_paths,
        )
    labels = [view.edge_label] if view.edge_label else None
    return enumerate_k_hop_paths(
        graph,
        view.k,
        source_predicate=_type_predicate(view.source_type),
        target_predicate=_type_predicate(view.target_type or view.source_type),
        edge_labels=labels,
        simple=True,
        allow_closing=True,
        max_paths=max_paths,
    )


def _same_type_paths(graph: PropertyGraph, view: ConnectorView,
                     max_paths: int | None) -> list[tuple[VertexId, ...]]:
    """Paths for the variable-length same-vertex-type connector.

    A path qualifies when both endpoints have the target type and no
    *intermediate* vertex has it — i.e. the path is a minimal hop between two
    target vertices, which is exactly what a contraction should collapse.
    """
    target_type = view.source_type
    assert target_type is not None
    results: list[tuple[VertexId, ...]] = []
    for start in graph.vertices(target_type):
        stack: list[tuple[VertexId, ...]] = [(start.id,)]
        while stack:
            path = stack.pop()
            if len(path) - 1 >= view.max_hops:
                continue
            for edge in graph.out_edges(path[-1]):
                if edge.target in path:
                    continue
                target_vertex = graph.vertex(edge.target)
                extended = path + (edge.target,)
                if target_vertex.type == target_type:
                    results.append(extended)
                    if max_paths is not None and len(results) >= max_paths:
                        return results
                    # Do not extend past another target vertex: contraction is
                    # between *adjacent* target vertices.
                    continue
                stack.append(extended)
    return results


def _same_edge_type_paths(graph: PropertyGraph, view: ConnectorView,
                          max_paths: int | None) -> list[tuple[VertexId, ...]]:
    """Paths for the same-edge-type connector: maximal runs of one edge label."""
    if view.edge_label is None:
        raise ViewError("same_edge_type connector requires edge_label")
    results: list[tuple[VertexId, ...]] = []
    label = view.edge_label
    for start in graph.vertices(view.source_type):
        stack: list[tuple[VertexId, ...]] = [(start.id,)]
        while stack:
            path = stack.pop()
            if len(path) - 1 >= view.max_hops:
                continue
            for edge in graph.out_edges(path[-1], label):
                if edge.target in path:
                    continue
                extended = path + (edge.target,)
                if len(extended) >= 2:
                    results.append(extended)
                    if max_paths is not None and len(results) >= max_paths:
                        return results
                stack.append(extended)
    return results


def _source_to_sink_paths(graph: PropertyGraph, view: ConnectorView,
                          max_paths: int | None) -> list[tuple[VertexId, ...]]:
    """Paths for the source-to-sink connector: graph sources to graph sinks."""
    sinks = set(graph.sinks())
    results: list[tuple[VertexId, ...]] = []
    for source_id in graph.sources():
        stack: list[tuple[VertexId, ...]] = [(source_id,)]
        while stack:
            path = stack.pop()
            if path[-1] in sinks and len(path) >= 2:
                results.append(path)
                if max_paths is not None and len(results) >= max_paths:
                    return results
                continue
            if len(path) - 1 >= view.max_hops:
                continue
            for edge in graph.out_edges(path[-1]):
                if edge.target in path:
                    continue
                stack.append(path + (edge.target,))
    return results


def count_connector_edges(graph: PropertyGraph, view: ConnectorView,
                          max_paths: int | None = None) -> int:
    """Number of edges the connector would have when materialized.

    This is the ground truth that Fig. 5 compares the size estimators against.
    The count deduplicates by (source, target) endpoint pair, matching the
    ``deduplicate=True`` materialization in :func:`materialize_connector`.
    """
    if view.connector_kind in ("k_hop", "k_hop_same_vertex_type"):
        paths = _k_hop_paths(graph, view, max_paths)
    elif view.connector_kind == "same_vertex_type":
        paths = _same_type_paths(graph, view, max_paths)
    elif view.connector_kind == "same_edge_type":
        paths = _same_edge_type_paths(graph, view, max_paths)
    else:
        paths = _source_to_sink_paths(graph, view, max_paths)
    return len({(p[0], p[-1]) for p in paths})


def count_connector_paths(graph: PropertyGraph, view: ConnectorView,
                          max_paths: int | None = None) -> int:
    """Number of *paths* the connector contracts (before endpoint deduplication)."""
    if view.connector_kind in ("k_hop", "k_hop_same_vertex_type"):
        return len(_k_hop_paths(graph, view, max_paths))
    if view.connector_kind == "same_vertex_type":
        return len(_same_type_paths(graph, view, max_paths))
    if view.connector_kind == "same_edge_type":
        return len(_same_edge_type_paths(graph, view, max_paths))
    return len(_source_to_sink_paths(graph, view, max_paths))
