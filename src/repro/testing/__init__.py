"""Deterministic test harnesses shared by the repo's torture suites.

:mod:`repro.testing.faults` provides the seeded fault injector the durability
layer (:mod:`repro.durability`) and the serving layer
(:mod:`repro.service.server`) thread through their named fault points, so
crash-recovery tests can kill the system at every interesting instant and
assert that recovery reproduces exactly the acknowledged prefix.
"""

from repro.testing.faults import (
    CHAOS_SEED_ENV,
    FAULT_POINTS,
    FaultAction,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    chaos_seed,
)

__all__ = [
    "CHAOS_SEED_ENV",
    "FAULT_POINTS",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "chaos_seed",
]
