"""Deterministic, seeded fault injection for crash-safety torture tests.

Durability claims are only as strong as the worst crash they survive, so the
WAL, the checkpointer, the commit path, and the HTTP front end each expose
**named fault points** — fixed strings threaded to one shared
:class:`FaultInjector`:

========================  =====================================================
``wal.append``            Before a WAL record's bytes are written.  Supports
                          *torn writes*: only a prefix of the framed record
                          reaches the file before the simulated crash.
``wal.fsync``             Before ``os.fsync`` on a WAL segment.  A failing
                          fsync leaves durability unknown, so ``raise`` plans
                          here are escalated to crashes (fsyncgate semantics).
``checkpoint.write``      Before a checkpoint's manifest is committed: data
                          files may exist but the checkpoint is not yet valid.
``commit.apply``          Before each mutation op is applied to the live
                          graph.  Escalated to a crash like ``wal.fsync`` —
                          a half-applied batch must never keep serving.
``server.handle``         Before the service routes a request; exercises the
                          500-with-error-id hygiene path and client retries.
========================  =====================================================

Plans are **deterministic**: the injector is seeded (``seed`` argument, or
the ``CHAOS_SEED`` environment knob used by the CI torture matrix), every
probabilistic draw comes from that seed in hit order, and ``after=N`` plans
fire on exactly the (N+1)-th hit of their point.  Two runs with the same
seed and the same call sequence inject the same faults at the same instants.

Modes:

* ``"raise"`` — raise :class:`InjectedFault` (a recoverable infrastructure
  error; the server maps it to a 500 with an error id).
* ``"crash"`` — raise :class:`InjectedCrash` (simulated process death; the
  torture harness catches it, simulates power loss, and runs recovery).
* ``"torn_write"`` — for byte-writing points: :meth:`FaultInjector.check`
  returns a :class:`FaultAction` telling the caller how many bytes of the
  frame to write before raising :class:`InjectedCrash` itself.  At points
  that do not write bytes this degrades to ``"crash"``.
* ``"latency"`` — sleep ``latency_seconds``, then continue normally.

Neither exception derives from :class:`~repro.errors.KaskadeError` on
purpose: the service's typed error handling must treat an injected fault
exactly like an unexpected infrastructure failure, not a known engine error.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field

#: Environment knob seeding the injector when no explicit seed is given; the
#: CI crash-torture leg runs the same sweep under several values of it.
CHAOS_SEED_ENV = "CHAOS_SEED"

#: Every named fault point the system threads through the injector.
FAULT_POINTS = ("wal.append", "wal.fsync", "checkpoint.write", "commit.apply",
                "server.handle")

#: Supported plan modes.
FAULT_MODES = ("raise", "crash", "torn_write", "latency")

#: Fault points where a ``raise`` plan is escalated to a crash because the
#: system cannot keep running correctly past a failure there (an fsync of
#: unknown outcome; a batch half-applied to the live graph).
_FATAL_POINTS = frozenset({"wal.fsync", "commit.apply"})


def chaos_seed(default: int = 0) -> int:
    """The torture seed: ``CHAOS_SEED`` from the environment, else ``default``."""
    raw = os.environ.get(CHAOS_SEED_ENV, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


class InjectedFault(Exception):
    """An injected, recoverable infrastructure fault at a named point."""

    def __init__(self, point: str, mode: str = "raise") -> None:
        super().__init__(f"injected fault at {point!r} (mode={mode})")
        self.point = point
        self.mode = mode


class InjectedCrash(InjectedFault):
    """Simulated process death: abandon in-memory state, recover from disk.

    Torture harnesses catch this, call
    :meth:`~repro.durability.wal.WriteAheadLog.simulate_power_loss` (dropping
    every byte that was never fsynced, exactly like a power cut), and then
    run recovery in a "new process".
    """

    def __init__(self, point: str) -> None:
        super().__init__(point, mode="crash")


@dataclass
class FaultPlan:
    """One armed fault: where, what, and when it fires.

    Attributes:
        point: Fault-point name (see :data:`FAULT_POINTS`; unknown names are
            allowed so tests can invent private points).
        mode: One of :data:`FAULT_MODES`.
        after: Hits of the point to let pass before the plan may fire
            (``after=2`` fires on the third hit).
        times: Number of firings before the plan retires (None = unlimited).
        probability: Chance of firing on each eligible hit, drawn from the
            injector's seeded RNG (1.0 = always).
        latency_seconds: Sleep duration for ``"latency"`` plans.
        torn_fraction: Fraction of the frame written by a ``"torn_write"``
            plan; None draws a deterministic fraction in (0, 1) per firing.
    """

    point: str
    mode: str = "raise"
    after: int = 0
    times: int | None = 1
    probability: float = 1.0
    latency_seconds: float = 0.0
    torn_fraction: float | None = None
    fired: int = field(default=0, init=False)

    @property
    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


@dataclass(frozen=True)
class FaultAction:
    """What a byte-writing caller must do for a ``torn_write`` firing."""

    point: str
    #: Bytes of the frame to write before raising :class:`InjectedCrash`.
    write_bytes: int


class FaultInjector:
    """Seeded registry of fault plans, hit counters, and injection counters.

    Example:
        >>> faults = FaultInjector(seed=7)
        >>> _ = faults.plan("wal.append", mode="crash", after=1)
        >>> faults.check("wal.append")  # first hit: passes
        >>> try:
        ...     faults.check("wal.append")  # second hit: crash
        ... except InjectedCrash as crash:
        ...     crash.point
        'wal.append'
    """

    def __init__(self, seed: int | None = None) -> None:
        self.seed = chaos_seed() if seed is None else seed
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._plans: dict[str, list[FaultPlan]] = {}
        self._hits: dict[str, int] = {}
        #: (point, mode) -> number of injections actually performed.
        self.injected: dict[tuple[str, str], int] = {}
        # Optional metrics counter (duck-typed: inc(point=..., mode=...)).
        self._counter = None

    # ---------------------------------------------------------------- arming
    def plan(self, point: str, mode: str = "raise", *, after: int = 0,
             times: int | None = 1, probability: float = 1.0,
             latency_seconds: float = 0.0,
             torn_fraction: float | None = None) -> FaultPlan:
        """Arm one fault plan; returns it (its ``fired`` counter is live)."""
        if mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {mode!r}; expected one of {FAULT_MODES}")
        armed = FaultPlan(point=point, mode=mode, after=after, times=times,
                          probability=probability,
                          latency_seconds=latency_seconds,
                          torn_fraction=torn_fraction)
        with self._lock:
            self._plans.setdefault(point, []).append(armed)
        return armed

    def arm_crash(self, point: str, after: int = 0) -> FaultPlan:
        """Shorthand for the torture sweep's bread and butter."""
        return self.plan(point, mode="crash", after=after)

    def clear(self, point: str | None = None) -> None:
        """Disarm every plan (for ``point`` only, when given)."""
        with self._lock:
            if point is None:
                self._plans.clear()
            else:
                self._plans.pop(point, None)

    def attach_counter(self, counter) -> None:
        """Mirror every injection into ``counter.inc(point=..., mode=...)``."""
        self._counter = counter

    # -------------------------------------------------------------- counters
    def hits(self, point: str) -> int:
        """Times ``point`` has been reached (fired or not)."""
        with self._lock:
            return self._hits.get(point, 0)

    def injected_total(self, point: str | None = None) -> int:
        with self._lock:
            return sum(count for (p, _), count in self.injected.items()
                       if point is None or p == point)

    # ------------------------------------------------------------- injection
    def check(self, point: str, *, payload_len: int | None = None) -> FaultAction | None:
        """Hit a fault point; inject whatever is armed and due.

        Args:
            point: The fault point's name.
            payload_len: Length in bytes of the frame about to be written,
                for points that support torn writes.

        Returns:
            A :class:`FaultAction` when a ``torn_write`` plan fired and the
            caller must write a prefix then raise :class:`InjectedCrash`;
            None when nothing fired (or a latency plan already slept).

        Raises:
            InjectedFault: A ``raise`` plan fired (at non-fatal points).
            InjectedCrash: A ``crash`` plan fired, or a ``raise``/
                ``torn_write`` plan fired somewhere it must escalate.
        """
        with self._lock:
            hit = self._hits.get(point, 0)
            self._hits[point] = hit + 1
            plan = self._due_plan(point, hit)
            if plan is None:
                return None
            plan.fired += 1
            mode = plan.mode
            if mode == "torn_write" and (payload_len is None or payload_len < 2):
                mode = "crash"  # nothing to tear at this point
            key = (point, mode)
            self.injected[key] = self.injected.get(key, 0) + 1
            if mode == "torn_write":
                fraction = plan.torn_fraction
                if fraction is None:
                    fraction = self._rng.uniform(0.05, 0.95)
                write_bytes = max(1, min(payload_len - 1,
                                         int(payload_len * fraction)))
            latency = plan.latency_seconds
        counter = self._counter
        if counter is not None:
            counter.inc(point=point, mode=mode)
        if mode == "latency":
            time.sleep(latency)
            return None
        if mode == "crash":
            raise InjectedCrash(point)
        if mode == "torn_write":
            return FaultAction(point=point, write_bytes=write_bytes)
        if point in _FATAL_POINTS:
            raise InjectedCrash(point)
        raise InjectedFault(point)

    def _due_plan(self, point: str, hit: int) -> FaultPlan | None:
        """The first armed plan due on this hit (lock held by caller)."""
        for plan in self._plans.get(point, ()):
            if plan.exhausted or hit < plan.after:
                continue
            if plan.probability < 1.0 and self._rng.random() >= plan.probability:
                continue
            return plan
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            armed = {point: len(plans) for point, plans in self._plans.items() if plans}
        return f"FaultInjector(seed={self.seed}, armed={armed}, injected={self.injected})"
