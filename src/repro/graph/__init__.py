"""Property-graph substrate: data model, schema, statistics, transforms, IO.

This subpackage replaces the role Neo4j plays in the paper: it stores typed
property graphs, maintains the degree statistics the cost model needs, and
provides the engine-agnostic transformations (filtering, grouping, path
contraction) that graph views are built from.
"""

from repro.graph.changelog import MUTATION_KINDS, ChangeLog, GraphMutation
from repro.graph.property_graph import Edge, PropertyGraph, Vertex
from repro.graph.schema import (
    EdgeType,
    GraphSchema,
    dblp_schema,
    homogeneous_schema,
    provenance_schema,
)
from repro.graph.statistics import (
    GraphStatistics,
    TypeDegreeSummary,
    compute_statistics,
    count_k_length_paths,
    degree_ccdf,
    fit_power_law,
    out_degree_histogram,
    percentile,
    summarize_counts_by_type,
)
from repro.graph.transform import (
    contract_paths,
    enumerate_k_hop_paths,
    filter_graph,
    group_vertices,
    induced_subgraph_by_vertex_types,
    remove_edges_by_label,
    remove_vertices_by_type,
    reverse_graph,
    union,
)
from repro.graph.io import (
    edge_prefix,
    from_edge_tuples,
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_graph_json,
    save_edge_list,
    save_graph_json,
)

__all__ = [
    "ChangeLog",
    "Edge",
    "EdgeType",
    "GraphMutation",
    "MUTATION_KINDS",
    "GraphSchema",
    "GraphStatistics",
    "PropertyGraph",
    "TypeDegreeSummary",
    "Vertex",
    "compute_statistics",
    "contract_paths",
    "count_k_length_paths",
    "dblp_schema",
    "degree_ccdf",
    "edge_prefix",
    "enumerate_k_hop_paths",
    "filter_graph",
    "fit_power_law",
    "from_edge_tuples",
    "graph_from_dict",
    "graph_to_dict",
    "group_vertices",
    "homogeneous_schema",
    "induced_subgraph_by_vertex_types",
    "load_edge_list",
    "load_graph_json",
    "out_degree_histogram",
    "percentile",
    "provenance_schema",
    "remove_edges_by_label",
    "remove_vertices_by_type",
    "reverse_graph",
    "save_edge_list",
    "save_graph_json",
    "summarize_counts_by_type",
    "union",
]
