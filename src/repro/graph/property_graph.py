"""In-memory property graph.

This module is the storage substrate of the reproduction and plays the role
Neo4j plays in the paper (§II, §VII-A): it stores typed vertices and edges with
key-value properties, maintains adjacency indexes for fast traversal, and
optionally validates inserts against a :class:`~repro.graph.schema.GraphSchema`.

The design favours predictable, explicit data structures (dictionaries keyed by
vertex/edge id, per-type indexes) over cleverness, so that traversal costs are
easy to reason about in the cost model (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import EdgeNotFoundError, GraphError, SchemaError, VertexNotFoundError
from repro.graph.changelog import ChangeLog, GraphMutation
from repro.graph.schema import GraphSchema

VertexId = Any
EdgeId = int


@dataclass
class Vertex:
    """A typed vertex with arbitrary key-value properties."""

    id: VertexId
    type: str
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Return a property value, or ``default`` when absent."""
        return self.properties.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.properties[key]

    def __contains__(self, key: str) -> bool:
        return key in self.properties


@dataclass
class Edge:
    """A typed, directed edge with arbitrary key-value properties."""

    id: EdgeId
    source: VertexId
    target: VertexId
    label: str
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Return a property value, or ``default`` when absent."""
        return self.properties.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.properties[key]

    def __contains__(self, key: str) -> bool:
        return key in self.properties

    def other(self, vertex_id: VertexId) -> VertexId:
        """Return the endpoint of this edge that is not ``vertex_id``."""
        if vertex_id == self.source:
            return self.target
        if vertex_id == self.target:
            return self.source
        raise GraphError(f"vertex {vertex_id!r} is not an endpoint of edge {self.id}")


class PropertyGraph:
    """A directed, typed, property multigraph with adjacency indexes.

    Example:
        >>> g = PropertyGraph(name="lineage")
        >>> g.add_vertex("j1", "Job", cpu=10.0)
        Vertex(id='j1', type='Job', properties={'cpu': 10.0})
        >>> g.add_vertex("f1", "File")
        Vertex(id='f1', type='File', properties={})
        >>> edge = g.add_edge("j1", "f1", "WRITES_TO")
        >>> g.out_degree("j1")
        1
    """

    def __init__(self, name: str = "graph", schema: GraphSchema | None = None,
                 validate: bool = False) -> None:
        """Create an empty graph.

        Args:
            name: Human-readable graph name (used in reports).
            schema: Optional schema describing allowed vertex/edge types.
            validate: When true (and a schema is given), every insert is checked
                against the schema and violations raise :class:`SchemaError`.
        """
        self.name = name
        self.schema = schema
        self.validate = validate and schema is not None
        self._vertices: dict[VertexId, Vertex] = {}
        self._edges: dict[EdgeId, Edge] = {}
        self._next_edge_id: EdgeId = 0
        # Monotonic counter bumped on every topological mutation; consumers
        # (statistics memoization, CSR snapshots) use it for invalidation.
        self._version: int = 0
        # Optional bounded mutation log (see enable_change_capture); None
        # keeps mutations entirely unobserved, the zero-overhead default.
        self._changelog: ChangeLog | None = None
        self._out: dict[VertexId, list[EdgeId]] = {}
        self._in: dict[VertexId, list[EdgeId]] = {}
        # Insertion-ordered per-type / per-label indexes (dicts as ordered sets)
        # so iteration order is deterministic across processes.
        self._vertices_by_type: dict[str, dict[VertexId, None]] = {}
        self._edges_by_label: dict[str, dict[EdgeId, None]] = {}

    # ------------------------------------------------------------------ sizes
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges currently in the graph."""
        return len(self._edges)

    def __len__(self) -> int:
        return self.num_vertices

    @property
    def version(self) -> int:
        """Monotonic topology-mutation counter.

        Incremented whenever a vertex or edge is inserted or removed (vertex
        property merges do not count — they change no topology or typing).
        Derived read-optimized structures record the version they were built
        at and treat a mismatch as staleness.
        """
        return self._version

    # ---------------------------------------------------------- change capture
    @property
    def changelog(self) -> ChangeLog | None:
        """The attached mutation log, or None when capture is disabled."""
        return self._changelog

    def enable_change_capture(self, capacity: int = 100_000) -> ChangeLog:
        """Start recording topological mutations into a bounded log.

        Idempotent: when capture is already enabled the existing log is
        returned (its capacity is left unchanged), so multiple consumers —
        e.g. several maintenance managers — share one log.
        """
        if self._changelog is None:
            self._changelog = ChangeLog(capacity=capacity, start_version=self._version)
        return self._changelog

    def disable_change_capture(self) -> None:
        """Stop recording mutations and detach the log."""
        self._changelog = None

    def _record(self, kind: str, **fields: Any) -> None:
        if self._changelog is not None:
            self._changelog.record(GraphMutation(version=self._version, kind=kind, **fields))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PropertyGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )

    # ---------------------------------------------------------------- vertices
    def add_vertex(self, vertex_id: VertexId, vertex_type: str, **properties: Any) -> Vertex:
        """Insert a vertex.  Re-inserting an existing id merges properties.

        Raises:
            SchemaError: If validation is on and the type is not in the schema.
            GraphError: If the same id is re-inserted with a different type.
        """
        if self.validate and self.schema is not None and not self.schema.has_vertex_type(vertex_type):
            raise SchemaError(
                f"vertex type {vertex_type!r} is not declared in schema {self.schema.name!r}"
            )
        existing = self._vertices.get(vertex_id)
        if existing is not None:
            if existing.type != vertex_type:
                raise GraphError(
                    f"vertex {vertex_id!r} already exists with type {existing.type!r}, "
                    f"cannot re-add with type {vertex_type!r}"
                )
            existing.properties.update(properties)
            return existing
        vertex = Vertex(id=vertex_id, type=vertex_type, properties=dict(properties))
        self._version += 1
        self._vertices[vertex_id] = vertex
        self._out[vertex_id] = []
        self._in[vertex_id] = []
        self._vertices_by_type.setdefault(vertex_type, {})[vertex_id] = None
        self._record("add_vertex", vertex_id=vertex_id, vertex_type=vertex_type)
        return vertex

    def has_vertex(self, vertex_id: VertexId) -> bool:
        """Whether the vertex id is present."""
        return vertex_id in self._vertices

    def vertex(self, vertex_id: VertexId) -> Vertex:
        """Look up a vertex by id.

        Raises:
            VertexNotFoundError: If the id is not present.
        """
        try:
            return self._vertices[vertex_id]
        except KeyError as exc:
            raise VertexNotFoundError(vertex_id) from exc

    def vertices(self, vertex_type: str | None = None) -> Iterator[Vertex]:
        """Iterate vertices, optionally restricted to one type."""
        if vertex_type is None:
            yield from self._vertices.values()
            return
        for vertex_id in self._vertices_by_type.get(vertex_type, ()):
            yield self._vertices[vertex_id]

    def vertex_ids(self, vertex_type: str | None = None) -> list[VertexId]:
        """Vertex ids, optionally restricted to one type."""
        if vertex_type is None:
            return list(self._vertices)
        return list(self._vertices_by_type.get(vertex_type, ()))

    def vertex_types(self) -> list[str]:
        """Distinct vertex types present in the graph data."""
        return [t for t, members in self._vertices_by_type.items() if members]

    def count_vertices(self, vertex_type: str | None = None) -> int:
        """Count vertices, optionally restricted to one type."""
        if vertex_type is None:
            return self.num_vertices
        return len(self._vertices_by_type.get(vertex_type, ()))

    def remove_vertex(self, vertex_id: VertexId) -> None:
        """Remove a vertex and all incident edges."""
        vertex = self.vertex(vertex_id)
        for edge_id in list(self._out[vertex_id]) + list(self._in[vertex_id]):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        self._version += 1
        del self._vertices[vertex_id]
        del self._out[vertex_id]
        del self._in[vertex_id]
        self._vertices_by_type[vertex.type].pop(vertex_id, None)
        self._record("remove_vertex", vertex_id=vertex_id, vertex_type=vertex.type)

    # ------------------------------------------------------------------- edges
    def add_edge(self, source: VertexId, target: VertexId, label: str,
                 **properties: Any) -> Edge:
        """Insert a directed edge from ``source`` to ``target`` with ``label``.

        Both endpoints must already exist.  Parallel edges are allowed (this is
        a multigraph), matching the property-graph model.

        Raises:
            VertexNotFoundError: If either endpoint is missing.
            SchemaError: If validation is on and the edge type violates the schema.
        """
        source_vertex = self.vertex(source)
        target_vertex = self.vertex(target)
        if self.validate and self.schema is not None and not self.schema.has_edge_type(
            source_vertex.type, target_vertex.type, label
        ):
            raise SchemaError(
                f"edge ({source_vertex.type})-[:{label}]->({target_vertex.type}) "
                f"is not declared in schema {self.schema.name!r}"
            )
        edge_id = self._next_edge_id
        self._next_edge_id += 1
        edge = Edge(id=edge_id, source=source, target=target, label=label,
                    properties=dict(properties))
        self._version += 1
        self._edges[edge_id] = edge
        self._out[source].append(edge_id)
        self._in[target].append(edge_id)
        self._edges_by_label.setdefault(label, {})[edge_id] = None
        self._record("add_edge", edge_id=edge_id, source=source, target=target, label=label)
        return edge

    def has_edge(self, source: VertexId, target: VertexId, label: str | None = None) -> bool:
        """Whether at least one edge from ``source`` to ``target`` (with ``label``) exists."""
        if source not in self._out:
            return False
        for edge_id in self._out[source]:
            edge = self._edges[edge_id]
            if edge.target == target and (label is None or edge.label == label):
                return True
        return False

    def has_edge_id(self, edge_id: EdgeId) -> bool:
        """Whether an edge with this id is present (ids are never reused)."""
        return edge_id in self._edges

    def edge(self, edge_id: EdgeId) -> Edge:
        """Look up an edge by id.

        Raises:
            EdgeNotFoundError: If the id is not present.
        """
        try:
            return self._edges[edge_id]
        except KeyError as exc:
            raise EdgeNotFoundError(edge_id) from exc

    def edges(self, label: str | None = None) -> Iterator[Edge]:
        """Iterate edges, optionally restricted to one label."""
        if label is None:
            yield from self._edges.values()
            return
        for edge_id in self._edges_by_label.get(label, ()):
            yield self._edges[edge_id]

    def edge_labels(self) -> list[str]:
        """Distinct edge labels present in the graph data."""
        return [label for label, members in self._edges_by_label.items() if members]

    def count_edges(self, label: str | None = None) -> int:
        """Count edges, optionally restricted to one label."""
        if label is None:
            return self.num_edges
        return len(self._edges_by_label.get(label, ()))

    def remove_edge(self, edge_id: EdgeId) -> None:
        """Remove an edge by id."""
        edge = self.edge(edge_id)
        self._version += 1
        del self._edges[edge_id]
        self._out[edge.source].remove(edge_id)
        self._in[edge.target].remove(edge_id)
        self._edges_by_label[edge.label].pop(edge_id, None)
        self._record("remove_edge", edge_id=edge_id, source=edge.source,
                     target=edge.target, label=edge.label)

    # --------------------------------------------------------------- traversal
    def out_edges(self, vertex_id: VertexId, label: str | None = None) -> Iterator[Edge]:
        """Outgoing edges of a vertex, optionally restricted to one label."""
        if vertex_id not in self._out:
            raise VertexNotFoundError(vertex_id)
        for edge_id in self._out[vertex_id]:
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def in_edges(self, vertex_id: VertexId, label: str | None = None) -> Iterator[Edge]:
        """Incoming edges of a vertex, optionally restricted to one label."""
        if vertex_id not in self._in:
            raise VertexNotFoundError(vertex_id)
        for edge_id in self._in[vertex_id]:
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def successors(self, vertex_id: VertexId, label: str | None = None) -> Iterator[VertexId]:
        """Target ids of outgoing edges (with duplicates for parallel edges)."""
        for edge in self.out_edges(vertex_id, label):
            yield edge.target

    def predecessors(self, vertex_id: VertexId, label: str | None = None) -> Iterator[VertexId]:
        """Source ids of incoming edges (with duplicates for parallel edges)."""
        for edge in self.in_edges(vertex_id, label):
            yield edge.source

    def neighbors(self, vertex_id: VertexId) -> set[VertexId]:
        """Distinct undirected neighbors of a vertex."""
        return set(self.successors(vertex_id)) | set(self.predecessors(vertex_id))

    def out_degree(self, vertex_id: VertexId, label: str | None = None) -> int:
        """Number of outgoing edges of a vertex (optionally per label)."""
        if label is None:
            if vertex_id not in self._out:
                raise VertexNotFoundError(vertex_id)
            return len(self._out[vertex_id])
        return sum(1 for _ in self.out_edges(vertex_id, label))

    def in_degree(self, vertex_id: VertexId, label: str | None = None) -> int:
        """Number of incoming edges of a vertex (optionally per label)."""
        if label is None:
            if vertex_id not in self._in:
                raise VertexNotFoundError(vertex_id)
            return len(self._in[vertex_id])
        return sum(1 for _ in self.in_edges(vertex_id, label))

    def degree(self, vertex_id: VertexId) -> int:
        """Total degree (in + out)."""
        return self.in_degree(vertex_id) + self.out_degree(vertex_id)

    def sources(self, vertex_type: str | None = None) -> list[VertexId]:
        """Vertices with no incoming edges (optionally restricted to a type)."""
        return [
            vid for vid in self.vertex_ids(vertex_type)
            if not self._in.get(vid)
        ]

    def sinks(self, vertex_type: str | None = None) -> list[VertexId]:
        """Vertices with no outgoing edges (optionally restricted to a type)."""
        return [
            vid for vid in self.vertex_ids(vertex_type)
            if not self._out.get(vid)
        ]

    # ---------------------------------------------------------------- restore
    @property
    def next_edge_id(self) -> EdgeId:
        """The id the next inserted edge will receive (monotonic, never reused)."""
        return self._next_edge_id

    def restore_edge(self, edge_id: EdgeId, source: VertexId, target: VertexId,
                     label: str, **properties: Any) -> Edge:
        """Re-insert an edge under its original id (checkpoint restore path).

        Edge ids are assigned monotonically and never reused, so a graph
        rebuilt from a checkpoint must keep the original ids for later WAL
        ``remove_edge``-by-id records (and differential fingerprints) to keep
        meaning the same edges.  Bumps the version like :meth:`add_edge`;
        callers restoring a checkpoint overwrite the counters afterwards with
        :meth:`restore_counters`.

        Raises:
            GraphError: When ``edge_id`` is already present.
            VertexNotFoundError: If either endpoint is missing.
        """
        if edge_id in self._edges:
            raise GraphError(f"edge id {edge_id!r} is already present; "
                             f"restore_edge never overwrites")
        self.vertex(source)
        self.vertex(target)
        edge = Edge(id=edge_id, source=source, target=target, label=label,
                    properties=dict(properties))
        self._version += 1
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        self._edges[edge_id] = edge
        self._out[source].append(edge_id)
        self._in[target].append(edge_id)
        self._edges_by_label.setdefault(label, {})[edge_id] = None
        self._record("add_edge", edge_id=edge_id, source=source, target=target,
                     label=label)
        return edge

    def restore_counters(self, *, version: int, next_edge_id: EdgeId | None = None) -> None:
        """Overwrite the monotonic counters after deserializing a checkpoint.

        Rebuilding a graph from a checkpoint replays one insert per vertex and
        edge, so the rebuilt ``version`` counts inserts rather than the whole
        mutation history.  The durability layer restores the checkpointed
        counters so WAL replay and MVCC version numbering continue exactly
        where the crashed process left off.  Counters only move forward.
        """
        if version < self._version and self._changelog is not None:
            raise GraphError("cannot rewind the version of a change-captured graph")
        self._version = max(self._version, version)
        if next_edge_id is not None:
            self._next_edge_id = max(self._next_edge_id, next_edge_id)

    # -------------------------------------------------------------- bulk logic
    def add_vertices(self, vertices: Iterable[tuple[VertexId, str]]) -> int:
        """Bulk-insert ``(id, type)`` pairs; returns number inserted."""
        count = 0
        for vertex_id, vertex_type in vertices:
            self.add_vertex(vertex_id, vertex_type)
            count += 1
        return count

    def add_edges(self, edges: Iterable[tuple[VertexId, VertexId, str]]) -> int:
        """Bulk-insert ``(source, target, label)`` triples; returns number inserted."""
        count = 0
        for source, target, label in edges:
            self.add_edge(source, target, label)
            count += 1
        return count

    def copy(self, name: str | None = None) -> "PropertyGraph":
        """Deep-ish copy of this graph (property dicts are copied shallowly per item)."""
        clone = PropertyGraph(name=name or f"{self.name}-copy", schema=self.schema,
                              validate=False)
        for vertex in self._vertices.values():
            clone.add_vertex(vertex.id, vertex.type, **vertex.properties)
        for edge in self._edges.values():
            clone.add_edge(edge.source, edge.target, edge.label, **edge.properties)
        clone.validate = self.validate
        return clone

    def infer_schema(self, name: str | None = None) -> GraphSchema:
        """Derive a schema from the data: one edge type per observed (type, label, type)."""
        schema = GraphSchema(name=name or f"{self.name}-schema")
        for vertex_type in self.vertex_types():
            schema.add_vertex_type(vertex_type)
        seen: set[tuple[str, str, str]] = set()
        for edge in self._edges.values():
            source_type = self._vertices[edge.source].type
            target_type = self._vertices[edge.target].type
            key = (source_type, target_type, edge.label)
            if key not in seen:
                seen.add(key)
                schema.add_edge_type(source_type, target_type, edge.label)
        return schema

    def check_against_schema(self, schema: GraphSchema | None = None) -> list[str]:
        """Validate all data against a schema, returning a list of violation messages."""
        schema = schema or self.schema
        if schema is None:
            raise GraphError("no schema provided and graph has no attached schema")
        violations: list[str] = []
        for vertex in self._vertices.values():
            if not schema.has_vertex_type(vertex.type):
                violations.append(f"vertex {vertex.id!r} has undeclared type {vertex.type!r}")
        for edge in self._edges.values():
            source_type = self._vertices[edge.source].type
            target_type = self._vertices[edge.target].type
            if not schema.has_edge_type(source_type, target_type, edge.label):
                violations.append(
                    f"edge {edge.id} ({source_type})-[:{edge.label}]->({target_type}) "
                    "violates schema"
                )
        return violations

    # ------------------------------------------------------------- memory size
    def estimated_footprint(self, bytes_per_vertex: int = 64, bytes_per_edge: int = 48) -> int:
        """Rough in-memory footprint estimate used for view space budgets (§V-B)."""
        property_bytes = sum(
            32 * len(v.properties) for v in self._vertices.values()
        ) + sum(32 * len(e.properties) for e in self._edges.values())
        return (
            self.num_vertices * bytes_per_vertex
            + self.num_edges * bytes_per_edge
            + property_bytes
        )
