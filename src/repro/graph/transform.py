"""Fundamental graph transformations.

The paper's views are built out of a handful of engine-agnostic graph
transformations (§IX): filtering vertices/edges (summarizers), grouping them
into super-vertices/edges (aggregator summarizers), and contracting paths into
single edges (connectors).  The view layer (:mod:`repro.views`) composes the
primitives defined here.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

from repro.errors import GraphError
from repro.graph.property_graph import Edge, PropertyGraph, Vertex, VertexId

VertexPredicate = Callable[[Vertex], bool]
EdgePredicate = Callable[[Edge], bool]


def induced_subgraph_by_vertex_types(
    graph: PropertyGraph,
    keep_types: Iterable[str],
    name: str | None = None,
) -> PropertyGraph:
    """Subgraph induced by vertices whose type is in ``keep_types``.

    Edges are kept only when both endpoints survive, matching the
    vertex-inclusion summarizer semantics (Table II).
    """
    keep = set(keep_types)
    return filter_graph(
        graph,
        vertex_predicate=lambda v: v.type in keep,
        name=name or f"{graph.name}|types={'+'.join(sorted(keep))}",
    )


def filter_graph(
    graph: PropertyGraph,
    vertex_predicate: VertexPredicate | None = None,
    edge_predicate: EdgePredicate | None = None,
    name: str | None = None,
) -> PropertyGraph:
    """General filter: keep vertices/edges satisfying the predicates.

    A kept edge requires both endpoints to be kept.  When a predicate is
    omitted, everything of that kind passes.
    """
    result = PropertyGraph(name=name or f"{graph.name}|filtered", schema=graph.schema)
    for vertex in graph.vertices():
        if vertex_predicate is None or vertex_predicate(vertex):
            result.add_vertex(vertex.id, vertex.type, **vertex.properties)
    for edge in graph.edges():
        if not (result.has_vertex(edge.source) and result.has_vertex(edge.target)):
            continue
        if edge_predicate is None or edge_predicate(edge):
            result.add_edge(edge.source, edge.target, edge.label, **edge.properties)
    return result


def remove_vertices_by_type(graph: PropertyGraph, remove_types: Iterable[str],
                            name: str | None = None) -> PropertyGraph:
    """Vertex-removal summarizer primitive: drop vertices of the given types."""
    remove = set(remove_types)
    return filter_graph(
        graph,
        vertex_predicate=lambda v: v.type not in remove,
        name=name or f"{graph.name}|without={'+'.join(sorted(remove))}",
    )


def remove_edges_by_label(graph: PropertyGraph, remove_labels: Iterable[str],
                          name: str | None = None) -> PropertyGraph:
    """Edge-removal summarizer primitive: drop edges with the given labels."""
    remove = set(remove_labels)
    return filter_graph(
        graph,
        edge_predicate=lambda e: e.label not in remove,
        name=name or f"{graph.name}|without-edges={'+'.join(sorted(remove))}",
    )


def contract_paths(
    graph: PropertyGraph,
    paths: Iterable[Sequence[VertexId]],
    edge_label: str,
    name: str | None = None,
    keep_vertex_properties: bool = True,
    deduplicate: bool = True,
) -> PropertyGraph:
    """Contract each path into a single edge between its endpoints.

    This is the core connector-construction primitive (§VI-A): every edge of
    the result graph corresponds to the contraction of one directed path in the
    input graph, and the vertex set of the result is the union of all path
    endpoints.

    Args:
        graph: Input graph (provides vertex types/properties for the endpoints).
        paths: Vertex-id sequences of length >= 2; only the first and last
            vertex of each path appear in the output.
        edge_label: Label given to every contracted edge (e.g. ``"JOB_TO_JOB_2HOP"``).
        name: Name for the resulting graph.
        keep_vertex_properties: Copy endpoint properties into the view.
        deduplicate: When true, at most one contracted edge is emitted per
            (source, target) pair; the edge's ``path_count`` property records
            how many paths were contracted into it.

    Returns:
        The connector graph.
    """
    result = PropertyGraph(name=name or f"{graph.name}|contracted")
    pair_counts: dict[tuple[VertexId, VertexId], int] = {}
    pair_hops: dict[tuple[VertexId, VertexId], int] = {}
    raw_pairs: list[tuple[VertexId, VertexId, int]] = []

    for path in paths:
        if len(path) < 2:
            raise GraphError(f"a contractible path needs at least 2 vertices, got {list(path)!r}")
        source, target = path[0], path[-1]
        for endpoint in (source, target):
            if not result.has_vertex(endpoint):
                vertex = graph.vertex(endpoint)
                properties = vertex.properties if keep_vertex_properties else {}
                result.add_vertex(vertex.id, vertex.type, **properties)
        hops = len(path) - 1
        if deduplicate:
            key = (source, target)
            pair_counts[key] = pair_counts.get(key, 0) + 1
            pair_hops.setdefault(key, hops)
        else:
            raw_pairs.append((source, target, hops))

    if deduplicate:
        for (source, target), count in pair_counts.items():
            result.add_edge(source, target, edge_label,
                            path_count=count, hops=pair_hops[(source, target)])
    else:
        for source, target, hops in raw_pairs:
            result.add_edge(source, target, edge_label, hops=hops)
    return result


def enumerate_k_hop_paths(
    graph: PropertyGraph,
    k: int,
    source_predicate: VertexPredicate | None = None,
    target_predicate: VertexPredicate | None = None,
    edge_labels: Iterable[str] | None = None,
    simple: bool = True,
    allow_closing: bool = False,
    max_paths: int | None = None,
) -> list[tuple[VertexId, ...]]:
    """Enumerate directed k-hop paths as vertex-id tuples of length ``k + 1``.

    Args:
        graph: Input graph.
        k: Number of hops (edges) per path, ``k >= 1``.
        source_predicate: Optional filter on the first vertex of the path.
        target_predicate: Optional filter on the last vertex of the path.
        edge_labels: Optional restriction on which edge labels may be traversed.
        simple: When true, a path may not revisit a vertex.
        allow_closing: When true (and ``simple``), the final vertex may close
            the path back onto its starting vertex — needed so that connector
            views capture "a job that reads its own output" style cycles that
            the raw pattern-matching queries also match.
        max_paths: Optional cap on the number of returned paths (the search
            stops once reached), used to keep dense homogeneous graphs tractable.

    Returns:
        List of vertex-id tuples.
    """
    if k < 1:
        raise GraphError(f"k must be >= 1, got {k}")
    allowed_labels = set(edge_labels) if edge_labels is not None else None
    results: list[tuple[VertexId, ...]] = []

    def extend(path: tuple[VertexId, ...], visited: set[VertexId]) -> bool:
        """Depth-first extension; returns False once max_paths is hit."""
        if len(path) == k + 1:
            last_vertex = graph.vertex(path[-1])
            if target_predicate is None or target_predicate(last_vertex):
                results.append(path)
                if max_paths is not None and len(results) >= max_paths:
                    return False
            return True
        for edge in graph.out_edges(path[-1]):
            if allowed_labels is not None and edge.label not in allowed_labels:
                continue
            if simple and edge.target in visited:
                is_closing_hop = (allow_closing and edge.target == path[0]
                                  and len(path) == k)
                if not is_closing_hop:
                    continue
            if not extend(path + (edge.target,), visited | {edge.target}):
                return False
        return True

    for vertex in graph.vertices():
        if source_predicate is not None and not source_predicate(vertex):
            continue
        if not extend((vertex.id,), {vertex.id}):
            break
    return results


def group_vertices(
    graph: PropertyGraph,
    key: Callable[[Vertex], Hashable | None],
    supervertex_type: str = "SuperVertex",
    aggregators: Mapping[str, Callable[[list[Any]], Any]] | None = None,
    edge_label: str | None = None,
    name: str | None = None,
) -> PropertyGraph:
    """Vertex-aggregator summarizer primitive: group vertices into super-vertices.

    Every vertex for which ``key`` returns a non-None value is assigned to the
    super-vertex identified by that value; vertices with a None key are copied
    through unchanged.  Edges are re-pointed to the super-vertices; multiple
    parallel edges between the same pair of super-vertices are merged into one
    super-edge carrying an ``edge_count`` property.

    Args:
        graph: Input graph.
        key: Grouping function; ``None`` means "keep this vertex as-is".
        supervertex_type: Vertex type of the created super-vertices.
        aggregators: Mapping ``property name -> reducer`` applied to the member
            vertices' property values; the result is stored on the super-vertex.
        edge_label: Label for merged super-edges (defaults to the original label).
        name: Name for the resulting graph.
    """
    result = PropertyGraph(name=name or f"{graph.name}|grouped")
    member_of: dict[VertexId, VertexId] = {}
    members: dict[Hashable, list[Vertex]] = {}

    for vertex in graph.vertices():
        group = key(vertex)
        if group is None:
            result.add_vertex(vertex.id, vertex.type, **vertex.properties)
            member_of[vertex.id] = vertex.id
        else:
            supervertex_id = f"group::{group}"
            members.setdefault(group, []).append(vertex)
            member_of[vertex.id] = supervertex_id

    for group, group_members in members.items():
        supervertex_id = f"group::{group}"
        properties: dict[str, Any] = {"member_count": len(group_members), "group_key": group}
        for prop, reducer in (aggregators or {}).items():
            values = [m.properties[prop] for m in group_members if prop in m.properties]
            if values:
                properties[prop] = reducer(values)
        result.add_vertex(supervertex_id, supervertex_type, **properties)

    merged: dict[tuple[VertexId, VertexId, str], int] = {}
    for edge in graph.edges():
        new_source = member_of[edge.source]
        new_target = member_of[edge.target]
        if new_source == new_target and new_source not in graph.vertex_ids():
            # Intra-group edge collapsed into the super-vertex: drop it.
            continue
        label = edge_label or edge.label
        merged_key = (new_source, new_target, label)
        merged[merged_key] = merged.get(merged_key, 0) + 1
    for (source, target, label), count in merged.items():
        result.add_edge(source, target, label, edge_count=count)
    return result


def reverse_graph(graph: PropertyGraph, name: str | None = None) -> PropertyGraph:
    """Return a copy of the graph with every edge direction flipped."""
    result = PropertyGraph(name=name or f"{graph.name}|reversed", schema=None)
    for vertex in graph.vertices():
        result.add_vertex(vertex.id, vertex.type, **vertex.properties)
    for edge in graph.edges():
        result.add_edge(edge.target, edge.source, edge.label, **edge.properties)
    return result


def union(left: PropertyGraph, right: PropertyGraph, name: str | None = None) -> PropertyGraph:
    """Union of two graphs over the same vertex-id space.

    Vertices present in both inputs must agree on their type; properties are
    merged with the right graph taking precedence.  All edges from both inputs
    are kept (as parallel edges where applicable).
    """
    result = PropertyGraph(name=name or f"{left.name}+{right.name}")
    for source_graph in (left, right):
        for vertex in source_graph.vertices():
            result.add_vertex(vertex.id, vertex.type, **vertex.properties)
        for edge in source_graph.edges():
            result.add_edge(edge.source, edge.target, edge.label, **edge.properties)
    return result
