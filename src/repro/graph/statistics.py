"""Graph data properties maintained for view size estimation (§V-A).

During data loading (and on updates) Kaskade maintains, per vertex type:

* the vertex cardinality, and
* coarse-grained out-degree distribution summaries — the 50th, 90th, and 95th
  percentile out-degree (plus the maximum, i.e. the 100th percentile).

These summaries feed the k-length path estimators (Eq. 2 and Eq. 3) in
:mod:`repro.core.estimator`.  This module also provides the degree-distribution
CCDF and power-law fit used by Fig. 8.
"""

from __future__ import annotations

import math
import weakref
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships in CI; loop fallback
    _np = None

from repro.graph.property_graph import PropertyGraph

#: Percentiles tracked by default, mirroring §V-A ("50th, 90th, and 95th
#: out-degree"), plus the max which the paper discusses as the loose upper bound.
DEFAULT_PERCENTILES: tuple[float, ...] = (50.0, 90.0, 95.0, 100.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100]).

    The nearest-rank definition matches how the paper talks about "the α-th
    percentile out-degree": it always returns an actually observed value.

    Raises:
        ValueError: If ``values`` is empty or ``q`` is out of range.
    """
    if not values:
        raise ValueError("cannot compute a percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank - 1, 0)]


@dataclass
class TypeDegreeSummary:
    """Out-degree summary for a single vertex type."""

    vertex_type: str
    vertex_count: int
    edge_count: int
    percentiles: dict[float, float] = field(default_factory=dict)
    mean_out_degree: float = 0.0
    max_out_degree: int = 0

    def degree_at(self, alpha: float) -> float:
        """The α-th percentile out-degree (``deg_α`` in Eq. 2/3).

        Falls back to the maximum out-degree when the requested percentile was
        not pre-computed.
        """
        if alpha in self.percentiles:
            return self.percentiles[alpha]
        return float(self.max_out_degree)


@dataclass
class GraphStatistics:
    """Per-type vertex cardinalities and out-degree summaries for a graph."""

    graph_name: str
    total_vertices: int
    total_edges: int
    per_type: dict[str, TypeDegreeSummary] = field(default_factory=dict)

    def vertex_count(self, vertex_type: str | None = None) -> int:
        """Vertex cardinality, overall or for one type."""
        if vertex_type is None:
            return self.total_vertices
        summary = self.per_type.get(vertex_type)
        return summary.vertex_count if summary else 0

    def degree_at(self, alpha: float, vertex_type: str | None = None) -> float:
        """``deg_α`` for a type, or over all vertices when ``vertex_type`` is None."""
        if vertex_type is not None:
            summary = self.per_type.get(vertex_type)
            return summary.degree_at(alpha) if summary else 0.0
        # Overall summary is stored under the pseudo-type "*".
        summary = self.per_type.get("*")
        return summary.degree_at(alpha) if summary else 0.0

    def source_types(self) -> list[str]:
        """Types that have at least one outgoing edge (T_G in Eq. 3)."""
        return [
            t for t, summary in self.per_type.items()
            if t != "*" and summary.edge_count > 0
        ]


# Memoized statistics per live graph: ``graph -> {percentiles: (version, stats)}``.
# Weak keys keep the cache from pinning graphs in memory; entries are
# invalidated by comparing the graph's topology ``version`` counter, so
# repeated cost-model calls (e.g. ``QueryCostModel.for_graph`` on every
# rewrite assessment) stop recomputing full degree scans while mutations
# still force a fresh computation.
_STATS_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def compute_statistics(
    graph: PropertyGraph,
    percentiles: Iterable[float] = DEFAULT_PERCENTILES,
    use_cache: bool = True,
) -> GraphStatistics:
    """Compute per-type out-degree summaries for ``graph``.

    The pseudo-type ``"*"`` aggregates over all vertices, which is what the
    homogeneous estimator (Eq. 2) uses.

    Results are memoized per ``(graph, percentiles)`` and invalidated through
    the graph's ``version`` mutation counter; pass ``use_cache=False`` to
    force a fresh scan.  The returned object is shared between callers —
    treat it as read-only.
    """
    wanted = tuple(percentiles)
    version = getattr(graph, "version", None)
    cacheable = use_cache and version is not None
    if cacheable:
        try:
            cached = _STATS_CACHE.get(graph, {}).get(wanted)
        except TypeError:  # unhashable / non-weakref-able graph object
            cacheable = False
            cached = None
        if cached is not None and cached[0] == version:
            return cached[1]
    stats = _compute_statistics(graph, wanted)
    if cacheable:
        try:
            _STATS_CACHE.setdefault(graph, {})[wanted] = (version, stats)
        except TypeError:  # pragma: no cover - defensive
            pass
    return stats


def _ndarray_snapshot(graph):
    """An ndarray-backed CSR view of ``graph`` that is free to use, or ``None``.

    Either ``graph`` already is an ndarray-backed
    :class:`~repro.storage.csr.CSRGraphStore`, or some
    :class:`~repro.storage.manager.StorageManager` has published a fresh
    snapshot for it.  Statistics never *build* a snapshot: a one-off degree
    scan is cheaper than a freeze, so the whole-array path only runs when
    the build cost is already paid.
    """
    if _np is None:
        return None
    from repro.storage.csr import CSRGraphStore  # deferred: keeps this
    from repro.storage.manager import lookup_snapshot  # module base-layer
    if isinstance(graph, CSRGraphStore):
        return graph if graph.uses_ndarrays else None
    if not isinstance(graph, PropertyGraph):
        return None
    snapshot = lookup_snapshot(graph)
    if snapshot is not None and snapshot.uses_ndarrays:
        return snapshot
    return None


def _summary_from_degrees(vertex_type: str, degrees,
                          wanted: tuple[float, ...]) -> TypeDegreeSummary:
    """Whole-array :class:`TypeDegreeSummary`: one sort covers every
    requested nearest-rank percentile.  Values are coerced back to python
    scalars so the result is field-by-field equal to the loop path's."""
    ordered = _np.sort(degrees)
    count = len(ordered)
    summary_percentiles: dict[float, float] = {}
    for q in wanted:
        if q == 0:
            summary_percentiles[q] = int(ordered[0])
        else:
            rank = math.ceil(q / 100.0 * count)
            summary_percentiles[q] = int(ordered[max(rank - 1, 0)])
    edge_count = int(ordered.sum())
    return TypeDegreeSummary(
        vertex_type=vertex_type,
        vertex_count=count,
        edge_count=edge_count,
        percentiles=summary_percentiles,
        mean_out_degree=edge_count / count,
        max_out_degree=int(ordered[-1]),
    )


def _compute_statistics(graph: PropertyGraph, wanted: tuple[float, ...]
                        ) -> GraphStatistics:
    stats = GraphStatistics(
        graph_name=graph.name,
        total_vertices=graph.num_vertices,
        total_edges=graph.num_edges,
    )
    for q in wanted:
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
    snapshot = _ndarray_snapshot(graph)
    if snapshot is not None:
        offsets, _ = snapshot.csr_ndarrays("out")
        degrees = _np.diff(offsets.astype(_np.int64))
        if len(degrees):
            stats.per_type["*"] = _summary_from_degrees("*", degrees, wanted)
        for vertex_type in snapshot.vertex_types():
            members = snapshot.indices_of_type_array(vertex_type)
            stats.per_type[vertex_type] = _summary_from_degrees(
                vertex_type, degrees[members], wanted)
        return stats
    degrees_by_type: dict[str, list[int]] = {"*": []}
    for vertex in graph.vertices():
        out_degree = graph.out_degree(vertex.id)
        degrees_by_type.setdefault(vertex.type, []).append(out_degree)
        degrees_by_type["*"].append(out_degree)

    for vertex_type, degrees in degrees_by_type.items():
        if not degrees:
            continue
        summary = TypeDegreeSummary(
            vertex_type=vertex_type,
            vertex_count=len(degrees),
            edge_count=sum(degrees),
            percentiles={q: percentile(degrees, q) for q in wanted},
            mean_out_degree=sum(degrees) / len(degrees),
            max_out_degree=max(degrees),
        )
        stats.per_type[vertex_type] = summary
    return stats


def out_degree_histogram(graph: PropertyGraph, vertex_type: str | None = None) -> dict[int, int]:
    """Histogram ``degree -> number of vertices with that out-degree``."""
    snapshot = _ndarray_snapshot(graph)
    if snapshot is not None:
        offsets, _ = snapshot.csr_ndarrays("out")
        degrees = _np.diff(offsets.astype(_np.int64))
        if vertex_type is not None:
            degrees = degrees[snapshot.indices_of_type_array(vertex_type)]
        values, counts = _np.unique(degrees, return_counts=True)
        return dict(zip(values.tolist(), counts.tolist()))
    counter: Counter[int] = Counter()
    for vertex in graph.vertices(vertex_type):
        counter[graph.out_degree(vertex.id)] += 1
    return dict(counter)


def degree_ccdf(graph: PropertyGraph, vertex_type: str | None = None,
                direction: str = "out") -> list[tuple[int, int]]:
    """Complementary cumulative degree distribution: ``(d, #vertices with degree > d)``.

    This is the series plotted (log-log) in Fig. 8.

    Args:
        graph: Input graph.
        vertex_type: Restrict to one vertex type, or use all vertices.
        direction: ``"out"``, ``"in"``, or ``"total"``.
    """
    degree_of = {
        "out": graph.out_degree,
        "in": graph.in_degree,
        "total": graph.degree,
    }.get(direction)
    if degree_of is None:
        raise ValueError(f"direction must be 'out', 'in', or 'total', got {direction!r}")
    degrees = [degree_of(v.id) for v in graph.vertices(vertex_type)]
    if not degrees:
        return []
    histogram = Counter(degrees)
    points: list[tuple[int, int]] = []
    remaining = len(degrees)
    for degree in sorted(histogram):
        # CCDF at x: number of vertices with degree strictly greater than x.
        remaining -= histogram[degree]
        points.append((degree, remaining))
    return points


def fit_power_law(ccdf_points: Sequence[tuple[int, int]]) -> tuple[float, float]:
    """Least-squares linear fit of the CCDF on log-log axes.

    Returns ``(exponent, r_squared)`` where ``exponent`` is the (negative)
    slope of the fit; a good linear fit (r² close to 1) indicates a power-law
    degree distribution, as the paper observes for all datasets except the
    road network (Fig. 8).

    Points with zero coordinates are skipped since they cannot be plotted on a
    log scale.
    """
    xs: list[float] = []
    ys: list[float] = []
    for degree, count in ccdf_points:
        if degree > 0 and count > 0:
            xs.append(math.log10(degree))
            ys.append(math.log10(count))
    if len(xs) < 2:
        return 0.0, 0.0
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    ss_xx = sum((x - mean_x) ** 2 for x in xs)
    ss_yy = sum((y - mean_y) ** 2 for y in ys)
    if ss_xx == 0 or ss_yy == 0:
        return 0.0, 0.0
    slope = ss_xy / ss_xx
    r_squared = (ss_xy * ss_xy) / (ss_xx * ss_yy)
    return -slope, r_squared


def summarize_counts_by_type(graph: PropertyGraph) -> dict[str, dict[str, int]]:
    """Vertex and (outgoing) edge counts broken down by vertex type.

    Used by the Table III / Fig. 6 reports.
    """
    result: dict[str, dict[str, int]] = {}
    for vertex_type in sorted(graph.vertex_types()):
        vertex_count = graph.count_vertices(vertex_type)
        edge_count = sum(graph.out_degree(vid) for vid in graph.vertex_ids(vertex_type))
        result[vertex_type] = {"vertices": vertex_count, "out_edges": edge_count}
    return result


def count_k_length_paths(graph: PropertyGraph, k: int,
                         source_type: str | None = None,
                         target_type: str | None = None,
                         max_count: int | None = None) -> int:
    """Exact number of directed k-length paths (walks without immediate memory).

    A "k-length path" here follows the paper's estimator semantics: a sequence
    of k edges where consecutive edges share an endpoint; vertices may repeat
    (the estimator counts successor choices, not simple paths).  The optional
    ``max_count`` short-circuits the count once exceeded, which keeps the
    ground-truth computation in Fig. 5 tractable on dense graphs.

    Args:
        graph: Input graph.
        k: Number of edges in each counted path (``k >= 1``).
        source_type: Restrict starting vertices to one type.
        target_type: Restrict ending vertices to one type.
        max_count: Optional early-exit threshold.

    Returns:
        The number of k-length paths (capped at ``max_count`` when provided).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    # paths_to[v] = number of k'-length paths ending at v after k' expansions.
    paths_to: dict[object, int] = {
        v.id: 1 for v in graph.vertices(source_type)
    }
    for _ in range(k):
        next_paths: dict[object, int] = {}
        for vertex_id, count in paths_to.items():
            for edge in graph.out_edges(vertex_id):
                next_paths[edge.target] = next_paths.get(edge.target, 0) + count
        paths_to = next_paths
        if max_count is not None and sum(paths_to.values()) > max_count:
            break
        if not paths_to:
            return 0
    if target_type is None:
        total = sum(paths_to.values())
    else:
        total = sum(
            count for vertex_id, count in paths_to.items()
            if graph.vertex(vertex_id).type == target_type
        )
    if max_count is not None:
        return min(total, max_count)
    return total
