"""Graph serialization: JSON documents and typed edge-list files.

Kaskade materializes views as physical data objects (§III-C); in this
reproduction a materialized view can be persisted to disk as a JSON document
or a pair of CSV-like files (vertices + edges), and loaded back.
"""

from __future__ import annotations

import csv
import hashlib
import json
from pathlib import Path
from typing import Any, Iterable

from repro.errors import GraphError
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import GraphSchema


def graph_to_dict(graph: PropertyGraph, *, include_ids: bool = False) -> dict[str, Any]:
    """Convert a graph to a JSON-serializable dictionary.

    With ``include_ids`` (the durability checkpoint format) every edge record
    carries its ``id`` and the payload carries the graph's monotonic counters
    (``version``, ``next_edge_id``), so :func:`graph_from_dict` can rebuild a
    graph whose edge ids and version numbering continue exactly where the
    serialized one stood — which WAL replay depends on.  The default (plain
    view persistence) stays id-free and byte-compatible with earlier stores.
    """
    payload = {
        "name": graph.name,
        "schema": graph.schema.to_dict() if graph.schema is not None else None,
        "vertices": [
            {"id": v.id, "type": v.type, "properties": v.properties}
            for v in graph.vertices()
        ],
        "edges": [
            {
                **({"id": e.id} if include_ids else {}),
                "source": e.source,
                "target": e.target,
                "label": e.label,
                "properties": e.properties,
            }
            for e in graph.edges()
        ],
    }
    if include_ids:
        payload["version"] = graph.version
        payload["next_edge_id"] = graph.next_edge_id
    return payload


def graph_from_dict(payload: dict[str, Any]) -> PropertyGraph:
    """Inverse of :func:`graph_to_dict` (either format).

    Edge records carrying an ``id`` are restored under that id, and
    checkpointed ``version`` / ``next_edge_id`` counters are re-applied, so a
    round trip through the ``include_ids`` format is exact.
    """
    schema_payload = payload.get("schema")
    schema = GraphSchema.from_dict(schema_payload) if schema_payload else None
    graph = PropertyGraph(name=payload.get("name", "graph"), schema=schema)
    for vertex in payload.get("vertices", ()):
        graph.add_vertex(vertex["id"], vertex["type"], **vertex.get("properties", {}))
    for edge in payload.get("edges", ()):
        if "id" in edge:
            graph.restore_edge(edge["id"], edge["source"], edge["target"],
                               edge["label"], **edge.get("properties", {}))
        else:
            graph.add_edge(edge["source"], edge["target"], edge["label"],
                           **edge.get("properties", {}))
    if "version" in payload:
        graph.restore_counters(version=payload["version"],
                               next_edge_id=payload.get("next_edge_id"))
    return graph


def graph_fingerprint(graph: PropertyGraph, *, include_edge_ids: bool = True) -> str:
    """Order-insensitive content hash of a graph's vertices, edges, and properties.

    The crash-recovery differential's equality check: two graphs with the
    same vertex set (id, type, properties) and edge set (id, source, target,
    label, properties) — regardless of insertion order — hash identically.
    ``include_edge_ids=False`` compares topology only, for graphs built along
    different mutation histories.
    """
    vertices = sorted(
        json.dumps([repr(v.id), v.type, sorted(v.properties.items(), key=repr)],
                   default=str)
        for v in graph.vertices())
    edges = sorted(
        json.dumps([e.id if include_edge_ids else None, repr(e.source),
                    repr(e.target), e.label,
                    sorted(e.properties.items(), key=repr)], default=str)
        for e in graph.edges())
    digest = hashlib.sha256()
    for line in vertices:
        digest.update(b"v")
        digest.update(line.encode())
    for line in edges:
        digest.update(b"e")
        digest.update(line.encode())
    return digest.hexdigest()


def save_graph_json(graph: PropertyGraph, path: str | Path) -> Path:
    """Write the graph as a JSON document; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle)
    return path


def load_graph_json(path: str | Path) -> PropertyGraph:
    """Load a graph previously written by :func:`save_graph_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return graph_from_dict(payload)


def save_edge_list(graph: PropertyGraph, vertices_path: str | Path,
                   edges_path: str | Path) -> tuple[Path, Path]:
    """Write the graph as two CSV files: ``id,type`` vertices and ``source,target,label`` edges.

    Properties are serialized as a JSON column so round-tripping is lossless.
    """
    vertices_path = Path(vertices_path)
    edges_path = Path(edges_path)
    vertices_path.parent.mkdir(parents=True, exist_ok=True)
    edges_path.parent.mkdir(parents=True, exist_ok=True)

    with vertices_path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "type", "properties"])
        for vertex in graph.vertices():
            writer.writerow([vertex.id, vertex.type, json.dumps(vertex.properties)])

    with edges_path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "target", "label", "properties"])
        for edge in graph.edges():
            writer.writerow([edge.source, edge.target, edge.label, json.dumps(edge.properties)])
    return vertices_path, edges_path


def load_edge_list(vertices_path: str | Path, edges_path: str | Path,
                   name: str = "graph") -> PropertyGraph:
    """Load a graph previously written by :func:`save_edge_list`."""
    graph = PropertyGraph(name=name)
    vertices_path = Path(vertices_path)
    edges_path = Path(edges_path)
    if not vertices_path.exists() or not edges_path.exists():
        raise GraphError(
            f"edge-list files not found: {vertices_path} / {edges_path}"
        )
    with vertices_path.open("r", encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            properties = json.loads(row.get("properties") or "{}")
            graph.add_vertex(row["id"], row["type"], **properties)
    with edges_path.open("r", encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            properties = json.loads(row.get("properties") or "{}")
            graph.add_edge(row["source"], row["target"], row["label"], **properties)
    return graph


def edge_prefix(graph: PropertyGraph, num_edges: int, name: str | None = None) -> PropertyGraph:
    """Graph consisting of the first ``num_edges`` edges (by insertion order).

    Fig. 5 materializes 2-hop connectors "over the first n edges of each public
    graph dataset"; this helper produces those prefixes.  Only vertices incident
    to a kept edge are retained.
    """
    if num_edges < 0:
        raise GraphError(f"num_edges must be >= 0, got {num_edges}")
    result = PropertyGraph(name=name or f"{graph.name}|first-{num_edges}-edges",
                           schema=graph.schema)
    for index, edge in enumerate(graph.edges()):
        if index >= num_edges:
            break
        for endpoint in (edge.source, edge.target):
            if not result.has_vertex(endpoint):
                vertex = graph.vertex(endpoint)
                result.add_vertex(vertex.id, vertex.type, **vertex.properties)
        result.add_edge(edge.source, edge.target, edge.label, **edge.properties)
    return result


def from_edge_tuples(
    edges: Iterable[tuple[Any, Any]],
    vertex_type: str = "Vertex",
    label: str = "LINK",
    name: str = "graph",
) -> PropertyGraph:
    """Build a homogeneous graph from plain ``(source, target)`` pairs."""
    graph = PropertyGraph(name=name)
    for source, target in edges:
        if not graph.has_vertex(source):
            graph.add_vertex(source, vertex_type)
        if not graph.has_vertex(target):
            graph.add_vertex(target, vertex_type)
        graph.add_edge(source, target, label)
    return graph
