"""Property-graph schemas.

A :class:`GraphSchema` captures the structural constraints the paper exploits
(§III-A): which vertex types exist, and which edge types connect which vertex
types (domain/range constraints).  For instance, in the provenance graph an
edge of type ``WRITES_TO`` only connects ``Job`` vertices to ``File`` vertices,
and there are no job-to-job or file-to-file edges.  These constraints are the
raw material of Kaskade's *explicit schema constraints* (§IV-A1) and the
starting point for mining *implicit constraints* such as "only even-length
paths exist between two files" (§IV-A2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError


@dataclass(frozen=True)
class EdgeType:
    """A typed edge declaration ``(source_type)-[label]->(target_type)``.

    Attributes:
        source: Vertex type that the edge may originate from (its *domain*).
        target: Vertex type that the edge may point to (its *range*).
        label: Edge label, e.g. ``"WRITES_TO"``.
    """

    source: str
    target: str
    label: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.source})-[:{self.label}]->({self.target})"


class GraphSchema:
    """Schema of a property graph: vertex types and typed edge declarations.

    The schema is itself a small directed multigraph over vertex *types*; the
    constraint-mining rules of §IV-A walk this graph to decide, e.g., which
    k-hop connectors are feasible at all.

    Example:
        >>> schema = GraphSchema.from_edges([
        ...     ("Job", "WRITES_TO", "File"),
        ...     ("File", "IS_READ_BY", "Job"),
        ... ])
        >>> sorted(schema.vertex_types)
        ['File', 'Job']
        >>> schema.has_edge_type("Job", "File", "WRITES_TO")
        True
    """

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._vertex_types: dict[str, dict[str, object]] = {}
        self._edge_types: dict[tuple[str, str, str], EdgeType] = {}
        # adjacency over types: source type -> list of EdgeType
        self._out: dict[str, list[EdgeType]] = {}
        self._in: dict[str, list[EdgeType]] = {}

    # ------------------------------------------------------------------ build
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[str, str, str]],
        name: str = "schema",
        vertex_types: Iterable[str] | None = None,
    ) -> "GraphSchema":
        """Build a schema from ``(source_type, label, target_type)`` triples."""
        schema = cls(name=name)
        for vertex_type in vertex_types or ():
            schema.add_vertex_type(vertex_type)
        for source, label, target in edges:
            schema.add_edge_type(source, target, label)
        return schema

    def add_vertex_type(self, vertex_type: str, **metadata: object) -> None:
        """Declare a vertex type.  Re-declaring merges metadata."""
        if not vertex_type:
            raise SchemaError("vertex type name must be non-empty")
        self._vertex_types.setdefault(vertex_type, {}).update(metadata)
        self._out.setdefault(vertex_type, [])
        self._in.setdefault(vertex_type, [])

    def add_edge_type(self, source: str, target: str, label: str) -> EdgeType:
        """Declare an edge type; implicitly declares its endpoint vertex types."""
        if not label:
            raise SchemaError("edge label must be non-empty")
        self.add_vertex_type(source)
        self.add_vertex_type(target)
        key = (source, target, label)
        if key in self._edge_types:
            return self._edge_types[key]
        edge_type = EdgeType(source=source, target=target, label=label)
        self._edge_types[key] = edge_type
        self._out[source].append(edge_type)
        self._in[target].append(edge_type)
        return edge_type

    # ------------------------------------------------------------------ query
    @property
    def vertex_types(self) -> list[str]:
        """All declared vertex type names."""
        return list(self._vertex_types)

    @property
    def edge_types(self) -> list[EdgeType]:
        """All declared edge types."""
        return list(self._edge_types.values())

    def vertex_type_metadata(self, vertex_type: str) -> Mapping[str, object]:
        """Metadata attached to a vertex type declaration."""
        try:
            return dict(self._vertex_types[vertex_type])
        except KeyError as exc:
            raise SchemaError(f"unknown vertex type {vertex_type!r}") from exc

    def has_vertex_type(self, vertex_type: str) -> bool:
        return vertex_type in self._vertex_types

    def has_edge_type(self, source: str, target: str, label: str | None = None) -> bool:
        """Whether an edge type from ``source`` to ``target`` (with ``label``) exists."""
        if label is not None:
            return (source, target, label) in self._edge_types
        return any(et.target == target for et in self._out.get(source, ()))

    def edge_types_between(self, source: str, target: str) -> list[EdgeType]:
        """All edge types with the given domain and range."""
        return [et for et in self._out.get(source, ()) if et.target == target]

    def outgoing_edge_types(self, vertex_type: str) -> list[EdgeType]:
        """Edge types whose domain is ``vertex_type``."""
        return list(self._out.get(vertex_type, ()))

    def incoming_edge_types(self, vertex_type: str) -> list[EdgeType]:
        """Edge types whose range is ``vertex_type``."""
        return list(self._in.get(vertex_type, ()))

    def source_types(self) -> list[str]:
        """Vertex types that are the domain of at least one edge type (T_G in Eq. 3)."""
        return [t for t in self._vertex_types if self._out.get(t)]

    def labels(self) -> list[str]:
        """All distinct edge labels."""
        seen: dict[str, None] = {}
        for edge_type in self._edge_types.values():
            seen.setdefault(edge_type.label, None)
        return list(seen)

    def __contains__(self, vertex_type: str) -> bool:
        return self.has_vertex_type(vertex_type)

    def __iter__(self) -> Iterator[str]:
        return iter(self._vertex_types)

    def __len__(self) -> int:
        return len(self._vertex_types)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSchema(name={self.name!r}, vertex_types={len(self._vertex_types)}, "
            f"edge_types={len(self._edge_types)})"
        )

    # ------------------------------------------------------------- path logic
    def k_hop_paths(self, k: int, start: str | None = None, end: str | None = None,
                    mode: str = "walk",
                    max_paths: int | None = None) -> list[tuple[EdgeType, ...]]:
        """Enumerate directed k-length paths over the schema (type) graph.

        This is the search space that the ``schemaKHopPath`` constraint mining
        rule (Listing 2) explores.  Three semantics are provided:

        * ``"walk"`` (default): vertex types may repeat freely.  This matches
          the view instantiations the paper actually reports (§IV-B lists
          job-to-job connectors for k = 2, 4, 6, 8, 10, which requires the
          Job→File→Job→… type cycle to be traversable), and it is the
          data-level notion of feasibility: a k-hop connector between two types
          is possible iff a k-length walk between them exists in the schema.
        * ``"trail"``: the literal Prolog semantics of Listing 2 — hop *i*'s
          target type must not appear among the first *i-1* path types, and the
          final hop is unconstrained.  With a Job/File schema this admits only
          k ≤ 2 same-type connectors.
        * ``"simple"``: no vertex type may repeat at all (strictest).

        Args:
            k: Exact number of hops (``k >= 1``).
            start: Optional restriction on the first path vertex type.
            end: Optional restriction on the last path vertex type.
            mode: ``"walk"``, ``"trail"``, or ``"simple"``.
            max_paths: Optional cap on the number of enumerated paths; useful
                for the unconstrained (exponential) search-space benchmark.

        Returns:
            A list of edge-type tuples, each of length ``k``.
        """
        if k < 1:
            raise SchemaError(f"k must be >= 1, got {k}")
        if mode not in {"walk", "trail", "simple"}:
            raise SchemaError(f"unknown path mode {mode!r}")
        results: list[tuple[EdgeType, ...]] = []
        starts = [start] if start is not None else self.vertex_types
        for start_type in starts:
            done = self._extend_path(start_type, k, end, mode, (), (start_type,),
                                     results, max_paths)
            if done:
                break
        return results

    def _extend_path(
        self,
        current: str,
        remaining: int,
        end: str | None,
        mode: str,
        path: tuple[EdgeType, ...],
        visited_types: tuple[str, ...],
        results: list[tuple[EdgeType, ...]],
        max_paths: int | None,
    ) -> bool:
        """Depth-first extension; returns True when ``max_paths`` has been reached."""
        if remaining == 0:
            if end is None or (path and path[-1].target == end):
                results.append(path)
            return max_paths is not None and len(results) >= max_paths
        for edge_type in self._out.get(current, ()):
            next_type = edge_type.target
            if mode == "simple" and next_type in visited_types:
                continue
            if mode == "trail" and remaining > 1 and next_type in visited_types[:-1]:
                # Listing 2: not(member(Z, Trail)) where Trail excludes the
                # current vertex type and the check is skipped on the last hop.
                continue
            done = self._extend_path(
                next_type,
                remaining - 1,
                end,
                mode,
                path + (edge_type,),
                visited_types + (next_type,),
                results,
                max_paths,
            )
            if done:
                return True
        return False

    def has_k_hop_path(self, source_type: str, target_type: str, k: int,
                       mode: str = "walk") -> bool:
        """Whether at least one k-hop schema path exists between the two types."""
        return bool(self.k_hop_paths(k, start=source_type, end=target_type, mode=mode,
                                     max_paths=1))

    def count_k_hop_paths(self, k: int, mode: str = "walk",
                          max_paths: int | None = None) -> int:
        """Number of k-hop schema paths (used by the §IV-A search-space benchmark)."""
        return len(self.k_hop_paths(k, mode=mode, max_paths=max_paths))

    def reachable_types(self, source_type: str, max_hops: int | None = None) -> set[str]:
        """Vertex types reachable from ``source_type`` via directed schema edges."""
        if not self.has_vertex_type(source_type):
            raise SchemaError(f"unknown vertex type {source_type!r}")
        frontier = {source_type}
        reached: set[str] = set()
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            next_frontier: set[str] = set()
            for vertex_type in frontier:
                for edge_type in self._out.get(vertex_type, ()):
                    if edge_type.target not in reached:
                        reached.add(edge_type.target)
                        next_frontier.add(edge_type.target)
            frontier = next_frontier
            hops += 1
        return reached

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, object]:
        """Plain-dict representation (suitable for JSON serialization)."""
        return {
            "name": self.name,
            "vertex_types": sorted(self._vertex_types),
            "edge_types": [
                {"source": et.source, "target": et.target, "label": et.label}
                for et in self._edge_types.values()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "GraphSchema":
        """Inverse of :meth:`to_dict`."""
        schema = cls(name=str(payload.get("name", "schema")))
        for vertex_type in payload.get("vertex_types", ()):  # type: ignore[union-attr]
            schema.add_vertex_type(str(vertex_type))
        for edge in payload.get("edge_types", ()):  # type: ignore[union-attr]
            schema.add_edge_type(str(edge["source"]), str(edge["target"]), str(edge["label"]))
        return schema


# --------------------------------------------------------------------------- #
# Canonical schemas used throughout the reproduction.
# --------------------------------------------------------------------------- #

def provenance_schema(include_tasks: bool = True) -> GraphSchema:
    """Schema of the Microsoft-style data lineage (provenance) graph (§I-A).

    Jobs write files, files are read by jobs; jobs spawn tasks which transfer
    data between each other; machines run tasks; users submit jobs.  There are
    no job-to-job or file-to-file edges, which is precisely the structural
    property the blast-radius optimization exploits.
    """
    schema = GraphSchema(name="provenance")
    schema.add_edge_type("Job", "File", "WRITES_TO")
    schema.add_edge_type("File", "Job", "IS_READ_BY")
    if include_tasks:
        schema.add_edge_type("Job", "Task", "SPAWNS")
        schema.add_edge_type("Task", "Task", "TRANSFERS_TO")
        schema.add_edge_type("Machine", "Task", "RUNS")
        schema.add_edge_type("User", "Job", "SUBMITS")
    return schema


def dblp_schema(include_venues: bool = True) -> GraphSchema:
    """Schema of the DBLP-like publication graph used in §VII.

    Authors write articles / in-proc papers; publications cite each other and
    appear in venues.  The summarized graph keeps only authors and
    publications.
    """
    schema = GraphSchema(name="dblp")
    schema.add_edge_type("Author", "Article", "WRITES")
    schema.add_edge_type("Article", "Author", "WRITTEN_BY")
    schema.add_edge_type("Author", "InProc", "WRITES")
    schema.add_edge_type("InProc", "Author", "WRITTEN_BY")
    if include_venues:
        schema.add_edge_type("Article", "Venue", "PUBLISHED_IN")
        schema.add_edge_type("InProc", "Venue", "PUBLISHED_IN")
    return schema


def homogeneous_schema(vertex_type: str = "Vertex", label: str = "LINK") -> GraphSchema:
    """Schema of a homogeneous graph: one vertex type, one self-loop edge type.

    Used for ``soc-livejournal``- and ``roadnet-usa``-style graphs, where
    k-length paths can exist between any two vertices (§VII-D).
    """
    schema = GraphSchema(name=f"homogeneous-{vertex_type.lower()}")
    schema.add_edge_type(vertex_type, vertex_type, label)
    return schema
