"""Change capture: a bounded log of graph topology mutations.

Incremental view maintenance (Zhuge & Garcia-Molina, §VIII [23] of the paper)
needs the *delta* between the base-graph state a view was materialized at and
the current state.  :class:`ChangeLog` records every topological mutation of a
:class:`~repro.graph.property_graph.PropertyGraph` — vertex/edge insertions
and removals — tagged with the graph's monotonic ``version`` counter, so a
consumer that remembers "my view is fresh as of version V" can ask for exactly
the events it has not seen yet (:meth:`ChangeLog.events_since`).

The log is **bounded**: it retains at most ``capacity`` events and evicts the
oldest beyond that.  Eviction moves the *floor version* forward; a consumer
whose last-seen version fell below the floor can no longer replay the delta
and must fall back to full re-materialization.  This keeps memory use constant
under unbounded mutation streams while making the fallback condition explicit
(:meth:`ChangeLog.can_replay_from` returns False).

Property-only updates (merging properties into an existing vertex) are *not*
captured — they do not bump the graph ``version`` and change no topology,
mirroring the invalidation semantics introduced with the storage subsystem.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import StaleSnapshotError

#: Event kinds recorded in the log.
MUTATION_KINDS = ("add_vertex", "remove_vertex", "add_edge", "remove_edge")


@dataclass(frozen=True)
class GraphMutation:
    """One topological mutation, tagged with the graph version it produced.

    Attributes:
        version: The graph's ``version`` counter *after* the mutation.
        kind: One of :data:`MUTATION_KINDS`.
        vertex_id / vertex_type: Set for vertex events.
        edge_id / source / target / label: Set for edge events.
    """

    version: int
    kind: str
    vertex_id: Any = None
    vertex_type: str | None = None
    edge_id: int | None = None
    source: Any = None
    target: Any = None
    label: str | None = None

    @property
    def is_edge_event(self) -> bool:
        return self.kind in ("add_edge", "remove_edge")

    @property
    def is_vertex_event(self) -> bool:
        return self.kind in ("add_vertex", "remove_vertex")


class ChangeLog:
    """Bounded, version-tagged mutation log for one graph.

    Example:
        >>> from repro.graph.property_graph import PropertyGraph
        >>> g = PropertyGraph()
        >>> log = g.enable_change_capture(capacity=100)
        >>> v0 = g.version
        >>> _ = g.add_vertex("a", "Job"); _ = g.add_vertex("b", "Job")
        >>> [e.kind for e in log.events_since(v0)]
        ['add_vertex', 'add_vertex']
    """

    def __init__(self, capacity: int = 100_000, start_version: int = 0) -> None:
        """Create a log that has complete history from ``start_version`` onward.

        Args:
            capacity: Maximum number of retained events (must be >= 1).
            start_version: Graph version at the moment capture was enabled.
        """
        if capacity < 1:
            raise ValueError(f"changelog capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # Events live in self._events[self._head:]; versions are strictly
        # monotonic, so delta suffixes are found by bisection instead of a
        # full scan.  Eviction advances the head and compacts lazily, which
        # keeps record() amortized O(1).
        self._events: list[GraphMutation] = []
        self._head = 0
        # History is complete for any state at or after this version.
        self._floor_version = start_version

    # ------------------------------------------------------------------ record
    def record(self, event: GraphMutation) -> None:
        """Append an event, evicting the oldest when over capacity."""
        self._events.append(event)
        if len(self._events) - self._head > self.capacity:
            # After eviction, replay is only complete from the evicted
            # event's resulting state onward.
            self._floor_version = self._events[self._head].version
            self._head += 1
            self._compact()

    def _compact(self) -> None:
        if self._head > self.capacity:
            del self._events[:self._head]
            self._head = 0

    # ------------------------------------------------------------------- query
    @property
    def floor_version(self) -> int:
        """Earliest graph version a delta can still be replayed from."""
        return self._floor_version

    def __len__(self) -> int:
        return len(self._events) - self._head

    def __iter__(self) -> Iterator[GraphMutation]:
        return iter(self._events[self._head:])

    def can_replay_from(self, version: int) -> bool:
        """Whether the log retains every event after ``version``."""
        return version >= self._floor_version

    def events_since(self, version: int, *,
                     strict: bool = False) -> list[GraphMutation] | None:
        """Events recorded after graph state ``version``, oldest first.

        O(log n + delta): versions are strictly monotonic, so the suffix
        starts at a bisection point.  When the requested delta has been
        partially evicted (``version`` fell below :attr:`floor_version`) the
        log cannot produce a complete replay; by default that returns None —
        the caller must fall back to full recomputation — while
        ``strict=True`` raises :class:`~repro.errors.StaleSnapshotError`
        instead, for consumers (pinned snapshot readers) that must never
        silently replay an incomplete delta.
        """
        if not self.can_replay_from(version):
            if strict:
                raise StaleSnapshotError(version, self._floor_version)
            return None
        index = bisect_right(self._events, version, lo=self._head,
                             key=lambda event: event.version)
        return self._events[index:]

    def truncate_before(self, version: int) -> int:
        """Drop events at or below ``version`` (all consumers caught up).

        Returns the number of events dropped.  The floor only moves forward.
        """
        index = bisect_right(self._events, version, lo=self._head,
                             key=lambda event: event.version)
        dropped = index - self._head
        self._head = index
        self._compact()
        if version > self._floor_version:
            self._floor_version = version
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChangeLog(events={len(self)}, capacity={self.capacity}, "
            f"floor_version={self._floor_version})"
        )
