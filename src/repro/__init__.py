"""Reproduction of "Kaskade: Graph Views for Efficient Graph Analytics" (ICDE 2020).

KASKADE is a graph query optimization framework that enumerates, selects, and
materializes *graph views* (connectors and summarizers) to speed up graph
analytics queries, and rewrites incoming queries over the materialized views.

The package is organized as:

* :mod:`repro.graph` — property-graph substrate (the Neo4j-storage role),
* :mod:`repro.storage` — pluggable physical storage: the abstract
  ``GraphStore`` interface, read-optimized CSR snapshots, persistent
  materialized-view storage, and the backend-selecting ``StorageManager``,
* :mod:`repro.inference` — Prolog-like inference engine (the SWI-Prolog role),
* :mod:`repro.query` — Cypher-like query language, executor, and cost model,
* :mod:`repro.views` — connector/summarizer views, catalog, and maintenance,
* :mod:`repro.core` — the paper's contribution: constraint-based enumeration,
  view size estimation, knapsack view selection, and view-based rewriting,
* :mod:`repro.solver` — 0/1 knapsack solvers,
* :mod:`repro.datasets` — synthetic stand-ins for the evaluation graphs,
* :mod:`repro.analytics` — graph analytics used by the Q1–Q8 workload,
* :mod:`repro.workloads` — the Table IV query workload,
* :mod:`repro.bench` — experiment harness regenerating every table and figure.

Quickstart::

    from repro import Kaskade
    from repro.datasets import provenance_graph

    graph = provenance_graph(num_jobs=200, seed=7)
    kaskade = Kaskade(graph)
    query = kaskade.parse(
        "MATCH (j1:Job)-[:WRITES_TO]->(f1:File), (f1)-[r*0..8]->(f2:File), "
        "(f2)-[:IS_READ_BY]->(j2:Job) RETURN j1 AS A, j2 AS B",
        name="blast-radius")
    report = kaskade.select_views([query], budget_edges=100_000)
    outcome = kaskade.execute(query)
"""

from repro.core.kaskade import Kaskade, MaterializationReport, QueryOutcome
from repro.storage import (
    CSRGraphStore,
    GraphStore,
    PersistentViewStore,
    StorageManager,
    StoragePolicy,
)

__version__ = "1.1.0"

__all__ = [
    "CSRGraphStore",
    "GraphStore",
    "Kaskade",
    "MaterializationReport",
    "PersistentViewStore",
    "QueryOutcome",
    "StorageManager",
    "StoragePolicy",
    "__version__",
]
